//! A real TCP node driving an [`AsyncProtocol`] deterministically.
//!
//! Each node owns one OS process (or thread, in the loopback cluster),
//! talks to its peers over plain `TcpStream`s carrying MAC-authenticated
//! [`WrapperMsg`] envelopes, and replays — bit for bit — the schedule the
//! in-process [`async_net::VirtualScheduler`] would produce for the same
//! `(n, seed, min_delay)`. The trick is conservative virtual-time
//! synchronization (Chandy–Misra–Bryant null messages):
//!
//! * Every Data frame carries its virtual send time and its
//!   content-keyed virtual delivery time `vdeliver = vsend +`
//!   [`async_net::link_delay`], computed from the per-link Data ordinal
//!   `lseq` that travels in the envelope.
//! * For each peer the node maintains a **watermark** `L_j`: a proven
//!   lower bound such that every Data frame still to arrive from `j` has
//!   `vdeliver > L_j`. A Data or Done frame with send time `s` raises it
//!   to `s + min_delay` (the sender's clock is monotone and every delay
//!   strictly exceeds `min_delay`); a Null frame raises it to the
//!   explicit promise it carries.
//! * Pending events (arrived Data, local timers, self-deliveries) are
//!   processed in the global [`VKey`] order, but only while their time is
//!   at most `bound = min_j L_j` — so no event can ever arrive "in the
//!   past", and the node's activation order equals the reference
//!   schedule restricted to this party.
//! * After draining, the node promises `bound + min_delay` to its peers:
//!   any later activation happens strictly after `bound`, so any later
//!   Data has `vdeliver > bound + min_delay`. Mutual promises advance
//!   idle nodes by `min_delay` per exchange, which is what lets silence
//!   timers fire even when crashed peers send nothing.
//!
//! Termination: a node that produced its output broadcasts a Done frame
//! and keeps cooperating (acks, echo relays) until every peer is done or
//! dead, then tears the links down. Connection loss triggers capped-
//! backoff reconnects by the dialing side (`i` dials every `j < i`);
//! a peer unreachable past the policy's deadline is declared dead and
//! excluded from the bound, leaving protocol-level degradation to the
//! silence-evidence machinery above the transport.
//!
//! # Durability and crash recovery
//!
//! With a [`Durability`] attached ([`run_node_durable`]), the node
//! appends every protocol-relevant transition to a [`crate::wal`] log
//! *before* acting on it: `wire_seq` reservations before frames hit the
//! wire, processed events (with the raw payload for remote deliveries)
//! before they activate the protocol, and periodic integrity marks
//! carrying a caller-supplied state probe. A SIGKILLed node restarted
//! with `recover` replays the log through a fresh protocol instance —
//! deterministically reconstructing its pending heap, per-link `lseq`
//! ordinals, retention buffers, and trace — then re-handshakes and
//! resumes mid-protocol without perturbing the virtual-time schedule.
//!
//! Two transport mechanisms make the rejoin loss-free:
//!
//! * **`wire_seq` reservation blocks** guarantee the recovered node's
//!   frames are never mistaken for replays by peers whose filters
//!   already saw pre-crash sequence numbers.
//! * **Handshake gap-resend**: every Hello carries the set of Data
//!   `lseq` ordinals its sender has received on the reverse link, and
//!   both sides of a (re)connect answer by resending exactly the
//!   retained frames the other side is missing — with fresh `wire_seq`
//!   but the *original* `lseq`/`vsend`/`vdeliver`, so the delivery
//!   schedule is preserved event for event. Duplicates (a frame both
//!   retained and already delivered) are dropped by a per-link dedup
//!   set without ever touching the replay filter.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};
use std::fmt;
use std::io::{self, ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use aa_trace::{EventKind, Trace};
use async_net::{link_delay, AsyncCtx, AsyncProtocol, AsyncRecorder, VKey};
use sim_net::{Envelope, PartyId};

use crate::codec::WireCodec;
use crate::frame::{frame, FrameBuffer, MAX_FRAME, PREFIX_LEN};
use crate::mac::{pair_key, MacKey};
use crate::wal::{self, WalEvent, WalHeader, WalMark, WalRecord, WalRemote, WalWriter};
use crate::wire::{FrameKind, HelloBody, WrapperMsg, MAX_HAVE_EXTRAS, WIRE_VERSION};

/// `wire_seq` numbers are reserved (and WAL-logged) in blocks this big,
/// so steady-state sends cost one log append per block, not per frame.
const WIRE_SEQ_BLOCK: u64 = 256;

/// Cap on retained outgoing Data frames per link. Eviction past the cap
/// sacrifices gap-resend completeness (a reconnecting peer missing an
/// evicted frame falls back to `Reliable` retransmission), never safety.
const RETAIN_CAP: usize = 16_384;

/// Consecutive rejected frames after which a connection is cut. A
/// corrupted byte can desynchronize the frame layer, turning the rest of
/// the stream into garbage; cutting after a burst lets the reconnect +
/// gap-resend machinery re-establish a clean link. The threshold keeps
/// isolated forged/replayed frames (an *attack*, not corruption) from
/// tearing down an otherwise healthy connection.
const REJECT_CUT_THRESHOLD: u32 = 8;

/// A WAL integrity mark is appended every this many processed events.
const MARK_INTERVAL: u64 = 64;

/// Control-plane keepalive period. Null promises and Done notices are
/// fire-and-forget; on a live-but-lossy link (chaos corruption without a
/// reset) a lost one is never retransmitted by `Reliable`, which covers
/// Data only. Every period the main loop re-announces its current
/// promise to peers still working and its Done to peers that have not
/// acknowledged it, so no single lost control frame can stall anyone.
const KEEPALIVE_MS: u64 = 100;

/// Reconnection behaviour after a link drops.
#[derive(Clone, Copy, Debug)]
pub struct ReconnectPolicy {
    /// Dial attempts before giving up on a peer.
    pub attempts: u32,
    /// Delay before the first retry; doubles per attempt.
    pub base_delay_ms: u64,
    /// Cap on the per-attempt delay.
    pub max_delay_ms: u64,
    /// A peer disconnected for this long is declared dead even on the
    /// accepting side (which cannot dial).
    pub dead_after_ms: u64,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        ReconnectPolicy {
            attempts: 4,
            base_delay_ms: 25,
            max_delay_ms: 400,
            dead_after_ms: 1500,
        }
    }
}

impl ReconnectPolicy {
    fn backoff(&self, attempt: u32) -> Duration {
        let ms = self
            .base_delay_ms
            .saturating_mul(1u64 << attempt.min(16))
            .min(self.max_delay_ms);
        Duration::from_millis(ms)
    }

    /// A policy patient enough to sit through a supervised restart:
    /// many attempts, and a dead-peer deadline comfortably above the
    /// supervisor's worst-case backoff-and-replay window.
    #[must_use]
    pub fn patient() -> Self {
        ReconnectPolicy {
            attempts: 40,
            base_delay_ms: 25,
            max_delay_ms: 400,
            dead_after_ms: 15_000,
        }
    }
}

/// Durable write-ahead logging for a node run.
#[derive(Clone, Debug)]
pub struct Durability {
    /// Where this node's WAL lives.
    pub wal_path: PathBuf,
    /// Replay an existing WAL at `wal_path` before going live. A
    /// missing or empty file falls back to a fresh start, so a
    /// supervisor can pass `recover` unconditionally.
    pub recover: bool,
}

/// Everything a node needs to join a cluster.
#[derive(Clone, Debug)]
pub struct NodeConfig {
    /// This node's party index.
    pub me: usize,
    /// Number of parties.
    pub n: usize,
    /// Corruption bound (recorded in the trace header).
    pub t: usize,
    /// Peer addresses, indexed by party; `peers[me]` is ignored.
    pub peers: Vec<SocketAddr>,
    /// Shared cluster secret the pairwise MAC keys derive from.
    pub secret: u64,
    /// Fingerprint of the run configuration, checked in the handshake.
    pub config_fp: u64,
    /// Seed of the deterministic delay schedule.
    pub seed: u64,
    /// Per-link lookahead; must match the reference run's delay floor.
    pub min_delay: f64,
    /// Trace label.
    pub label: String,
    /// Reconnect policy.
    pub reconnect: ReconnectPolicy,
    /// How long to wait for all links to come up initially.
    pub handshake_timeout: Duration,
    /// Hard wall-clock cap on the whole run.
    pub wall_timeout: Duration,
    /// Hard cap on processed virtual events (runaway guard).
    pub max_events: u64,
}

impl NodeConfig {
    /// A configuration with the transport defaults (`min_delay` 0.5,
    /// 10 s handshake, 60 s wall cap, 2 M events).
    #[must_use]
    pub fn new(
        me: usize,
        n: usize,
        t: usize,
        peers: Vec<SocketAddr>,
        secret: u64,
        config_fp: u64,
        seed: u64,
    ) -> Self {
        NodeConfig {
            me,
            n,
            t,
            peers,
            secret,
            config_fp,
            seed,
            min_delay: 0.5,
            label: "net".into(),
            reconnect: ReconnectPolicy::default(),
            handshake_timeout: Duration::from_secs(10),
            wall_timeout: Duration::from_secs(60),
            max_events: 2_000_000,
        }
    }

    fn validate(&self) -> Result<(), NetError> {
        if self.me >= self.n {
            return Err(NetError::Config(format!(
                "me = {} out of range for n = {}",
                self.me, self.n
            )));
        }
        if self.peers.len() != self.n {
            return Err(NetError::Config(format!(
                "expected {} peer addresses, got {}",
                self.n,
                self.peers.len()
            )));
        }
        if !(0.0..1.0).contains(&self.min_delay) {
            return Err(NetError::Config(format!(
                "min_delay {} outside [0, 1)",
                self.min_delay
            )));
        }
        Ok(())
    }

    fn wal_header(&self) -> WalHeader {
        WalHeader {
            config_fp: self.config_fp,
            me: self.me,
            n: self.n,
            t: self.t,
            seed: self.seed,
            min_delay_bits: self.min_delay.to_bits(),
            wire_version: WIRE_VERSION,
            label: self.label.clone(),
        }
    }
}

/// A transport-level failure of a node run.
#[derive(Clone, Debug)]
pub enum NetError {
    /// The configuration is internally inconsistent.
    Config(String),
    /// A socket operation failed irrecoverably.
    Io(String),
    /// The cluster's links did not all come up (or a peer presented a
    /// mismatching configuration fingerprint / wire version).
    Handshake(String),
    /// The wall-clock cap elapsed before termination.
    WallTimeout {
        /// Elapsed time when the run was abandoned.
        elapsed_ms: u64,
    },
    /// The event cap was hit — the run stopped making real progress.
    Stalled {
        /// Events processed when the run was abandoned.
        events: u64,
    },
    /// Every peer was declared dead before this node produced an
    /// output. Alone it can never complete (the protocol needs `n − t`
    /// parties), and with no live watermark the conservative bound is
    /// unbounded — retransmission timers would spin the event loop
    /// forever. Failing fast hands the decision to the supervisor.
    Isolated {
        /// Events processed when the node found itself alone.
        events: u64,
    },
    /// The write-ahead log could not be replayed into this run: it is
    /// corrupt past the recoverable prefix, belongs to a different run
    /// configuration, or the deterministic replay diverged from it.
    Recovery(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Config(m) => write!(f, "config error: {m}"),
            NetError::Io(m) => write!(f, "io error: {m}"),
            NetError::Handshake(m) => write!(f, "handshake failed: {m}"),
            NetError::WallTimeout { elapsed_ms } => {
                write!(f, "wall-clock timeout after {elapsed_ms} ms")
            }
            NetError::Stalled { events } => write!(f, "stalled after {events} events"),
            NetError::Isolated { events } => {
                write!(f, "every peer died before an output ({events} events in)")
            }
            NetError::Recovery(m) => write!(f, "recovery failed: {m}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e.to_string())
    }
}

impl From<wal::WalError> for NetError {
    fn from(e: wal::WalError) -> Self {
        NetError::Recovery(e.to_string())
    }
}

/// Transport counters, reported per node.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Data/Done/Hello frames sent.
    pub frames_sent: u64,
    /// Authenticated frames received (all kinds).
    pub frames_received: u64,
    /// Null (virtual-time promise) frames sent.
    pub nulls_sent: u64,
    /// Payload bytes enqueued to writers.
    pub bytes_sent: u64,
    /// Payload bytes received.
    pub bytes_received: u64,
    /// Frames rejected for a bad MAC.
    pub rejected_mac: u64,
    /// Frames rejected as replays (stale `wire_seq`).
    pub rejected_replay: u64,
    /// Frames rejected as structurally malformed.
    pub rejected_malformed: u64,
    /// Successful reconnects.
    pub reconnects: u64,
    /// Protocol-level retransmissions (from the `Reliable` layer).
    pub retransmissions: u64,
    /// Peers declared dead.
    pub dead_peers: u64,
    /// Data frames dropped because the link was down when sending.
    pub send_drops: u64,
    /// Data frames gap-resent from retention during a handshake.
    pub resent_frames: u64,
    /// Duplicate Data frames dropped by the per-link `lseq` dedup set
    /// (authenticated, fresh `wire_seq`, already-delivered ordinal).
    pub dup_frames: u64,
    /// Dead peers revived by a successful re-handshake.
    pub revived_peers: u64,
    /// Retained frames evicted past [`RETAIN_CAP`].
    pub retain_evicted: u64,
}

/// What a completed (or degraded-but-terminated) node run produced.
#[derive(Clone, Debug)]
pub struct NodeReport<O> {
    /// The protocol's output, if it decided.
    pub output: Option<O>,
    /// This node's recorded trace (its own proto events + transport
    /// drops), ready for [`aa_trace::merge_traces`].
    pub trace: Trace,
    /// Transport counters.
    pub stats: NetStats,
    /// Final virtual time.
    pub vtime: f64,
}

/// The set of Data `lseq` ordinals received on one incoming link,
/// stored as a contiguous prefix plus out-of-order extras — the exact
/// shape the Hello's gap-resend advertisement uses.
#[derive(Debug, Default)]
struct HaveSet {
    /// Every `lseq < prefix` has been received.
    prefix: u64,
    /// Received ordinals at or above `prefix`.
    extras: BTreeSet<u64>,
}

impl HaveSet {
    fn contains(&self, lseq: u64) -> bool {
        lseq < self.prefix || self.extras.contains(&lseq)
    }

    fn insert(&mut self, lseq: u64) {
        if lseq < self.prefix {
            return;
        }
        if lseq == self.prefix {
            self.prefix += 1;
            while self.extras.remove(&self.prefix) {
                self.prefix += 1;
            }
        } else {
            self.extras.insert(lseq);
        }
    }
}

/// A sent Data frame kept for handshake gap-resend: enough to rebuild
/// the exact wire frame (modulo `wire_seq`, which is always fresh).
#[derive(Debug)]
struct Retained {
    vsend: f64,
    vdeliver: f64,
    body: Vec<u8>,
}

/// A liveness transition observed by a helper thread, queued for the
/// main loop to record into the trace.
#[derive(Clone, Copy, Debug)]
enum Transition {
    Reconnect { peer: usize, attempt: usize },
    BackoffExhausted { peer: usize, attempts: usize },
    DeadPeer { peer: usize },
}

/// Per-peer shared state, written by reader/acceptor/reconnect threads
/// and drained by the main loop.
#[derive(Debug)]
struct PeerSt {
    inbox: VecDeque<WrapperMsg>,
    /// Lower bound on future Data `vdeliver` from this peer.
    watermark: f64,
    /// Highest authenticated incoming `wire_seq` (replay filter).
    last_auth: Option<u64>,
    /// Next outgoing `wire_seq` on this link.
    out_wire_seq: u64,
    /// Exclusive upper bound of the WAL-reserved `wire_seq` block.
    wire_reserved: u64,
    /// Highest promise already sent to this peer.
    last_promised: f64,
    /// Data `lseq` ordinals received from this peer (dedup + Hello).
    have: HaveSet,
    /// Sent Data frames retained for gap-resend, by `lseq`.
    retain: BTreeMap<u64, Retained>,
    /// Whether this peer has been sent our Done on the *current*
    /// connection (a reconnect clears it, so Done is re-announced).
    done_notified: bool,
    /// Whether this peer acknowledged our Done. Until then the
    /// keepalive re-announces it — a Done lost on a live-but-lossy
    /// link must not stall the peer's termination.
    done_acked: bool,
    /// A `Done` arrived from this peer and its `DoneAck` has not been
    /// sent yet (the main loop drains this on its next pass).
    ack_owed: bool,
    done: bool,
    dead: bool,
    connected: bool,
    reconnecting: bool,
    down_since: Option<Instant>,
    /// Rejections not yet recorded in the trace (count since last drain).
    pending_drops: u64,
    tx: Option<mpsc::Sender<Vec<u8>>>,
}

impl PeerSt {
    fn new() -> Self {
        PeerSt {
            inbox: VecDeque::new(),
            watermark: 0.0,
            last_auth: None,
            out_wire_seq: 0,
            wire_reserved: 0,
            last_promised: 0.0,
            have: HaveSet::default(),
            retain: BTreeMap::new(),
            done_notified: false,
            done_acked: false,
            ack_owed: false,
            done: false,
            dead: false,
            connected: false,
            reconnecting: false,
            down_since: None,
            pending_drops: 0,
            tx: None,
        }
    }
}

#[derive(Debug)]
struct Inner {
    peers: Vec<PeerSt>,
    stats: NetStats,
    /// Liveness transitions queued for the main loop's recorder.
    transitions: Vec<Transition>,
    /// First WAL append failure (surfaced as a run error).
    wal_error: Option<String>,
}

struct Shared {
    inner: Mutex<Inner>,
    cv: Condvar,
    shutdown: AtomicBool,
    /// The acceptor ignores connections until this is set — a
    /// recovering node must finish its replay before any handshake can
    /// read the retention/have state the replay rebuilds.
    accepting: AtomicBool,
    /// The write-ahead log, when the run is durable.
    /// Lock order: `inner` before `wal`, never the reverse.
    wal: Mutex<Option<WalWriter>>,
    /// Stream clones registered for unblocking shutdown.
    streams: Mutex<Vec<TcpStream>>,
    /// Writer threads: joined *before* the sockets are torn down so
    /// queued frames (the final Done) still reach the wire.
    writer_handles: Mutex<Vec<JoinHandle<()>>>,
    /// Reader and reconnect threads: unblocked by the socket shutdown
    /// and the shutdown flag, joined last.
    aux_handles: Mutex<Vec<JoinHandle<()>>>,
    me: usize,
    n: usize,
    secret: u64,
    min_delay: f64,
}

impl Shared {
    fn key(&self, peer: usize) -> MacKey {
        pair_key(self.secret, self.me, peer)
    }
}

/// A locally pending virtual event.
enum LocalEv<M> {
    Deliver(Envelope<M>),
    Timer(u64),
}

struct Pend<M> {
    key: VKey,
    what: LocalEv<M>,
    /// `(vsend, raw body)` of the frame behind a remote delivery, kept
    /// only when a WAL is attached (the log must be able to re-inject
    /// the payload at replay).
    wire: Option<(f64, Vec<u8>)>,
}

impl<M> PartialEq for Pend<M> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<M> Eq for Pend<M> {}
impl<M> PartialOrd for Pend<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Pend<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// Reads exactly one frame from `stream` (which must have a read
/// timeout set), failing on EOF, timeout, or framing errors.
///
/// This must consume EXACTLY the frame's bytes, never more: the peer's
/// first protocol frames can already sit behind the Hello in the socket
/// buffer (the peer registers the link the moment its Hello response is
/// written, and may start the protocol before we finish reading it). A
/// buffered read here would swallow those frames and silently lose
/// them — forcing retransmissions that shift the whole delay schedule.
fn read_one_frame(stream: &mut TcpStream) -> Result<Vec<u8>, NetError> {
    let mut prefix = [0u8; PREFIX_LEN];
    stream.read_exact(&mut prefix).map_err(map_handshake_eof)?;
    let len = u32::from_be_bytes(prefix) as usize;
    if len > MAX_FRAME {
        return Err(NetError::Handshake(format!(
            "oversized handshake frame ({len} bytes)"
        )));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload).map_err(map_handshake_eof)?;
    Ok(payload)
}

fn map_handshake_eof(e: io::Error) -> NetError {
    if e.kind() == ErrorKind::UnexpectedEof {
        NetError::Handshake("connection closed mid-handshake".into())
    } else {
        NetError::from(e)
    }
}

/// Allocates the next outgoing `wire_seq` on the link to `peer`. With a
/// WAL attached, sequence numbers are claimed in [`WIRE_SEQ_BLOCK`]-size
/// reservation blocks whose records hit the log *before* any frame in
/// the block can hit the wire — so a recovered node resumes past every
/// sequence number a peer's replay filter might already have seen.
fn assign_wire_seq(shared: &Shared, inner: &mut Inner, peer: usize) -> u64 {
    let (s, reserve) = {
        let p = &mut inner.peers[peer];
        let s = p.out_wire_seq;
        p.out_wire_seq += 1;
        if s >= p.wire_reserved {
            let upto = s + WIRE_SEQ_BLOCK;
            p.wire_reserved = upto;
            (s, Some(upto))
        } else {
            (s, None)
        }
    };
    if let Some(upto) = reserve {
        let mut wal = shared.wal.lock().expect("wal lock");
        if let Some(w) = wal.as_mut() {
            if let Err(e) = w.append(&WalRecord::Reserve { peer, upto }) {
                drop(wal);
                inner.wal_error.get_or_insert(e.to_string());
            }
        }
    }
    s
}

fn make_hello(shared: &Shared, cfg_fp: u64, peer: usize) -> WrapperMsg {
    let (wire_seq, have_prefix, have_extras) = {
        let mut inner = shared.inner.lock().expect("net lock");
        let s = assign_wire_seq(shared, &mut inner, peer);
        let p = &inner.peers[peer];
        // Truncating an absurdly fragmented have-set only costs the
        // peer some duplicate resends, which the dedup set absorbs.
        let extras: Vec<u64> = p
            .have
            .extras
            .iter()
            .copied()
            .take(MAX_HAVE_EXTRAS)
            .collect();
        (s, p.have.prefix, extras)
    };
    WrapperMsg {
        kind: FrameKind::Hello,
        from: shared.me as u32,
        to: peer as u32,
        wire_seq,
        lseq: 0,
        vsend: 0.0,
        vdeliver: 0.0,
        body: HelloBody {
            config_fp: cfg_fp,
            version: WIRE_VERSION,
            have_prefix,
            have_extras,
        }
        .to_bytes(),
        mac: 0,
    }
    .signed(shared.key(peer))
}

/// Authenticates an incoming Hello against `expected_from` (or any peer
/// if `None`), returning the sender and the decoded body. Updates the
/// replay filter.
fn check_hello(
    shared: &Shared,
    cfg_fp: u64,
    msg: &WrapperMsg,
    expected_from: Option<usize>,
) -> Result<(usize, HelloBody), NetError> {
    if msg.kind != FrameKind::Hello {
        return Err(NetError::Handshake("first frame is not a Hello".into()));
    }
    let from = msg.from as usize;
    if from >= shared.n || from == shared.me || msg.to != shared.me as u32 {
        return Err(NetError::Handshake(format!(
            "hello addressed {} -> {}",
            msg.from, msg.to
        )));
    }
    if let Some(exp) = expected_from {
        if from != exp {
            return Err(NetError::Handshake(format!(
                "expected hello from {exp}, got {from}"
            )));
        }
    }
    if !msg.verify(shared.key(from)) {
        return Err(NetError::Handshake(format!(
            "hello from {from} failed authentication"
        )));
    }
    let hello = HelloBody::from_bytes(&msg.body).map_err(|e| NetError::Handshake(e.to_string()))?;
    if hello.version != WIRE_VERSION {
        return Err(NetError::Handshake(format!(
            "peer {from} speaks wire version {}, expected {WIRE_VERSION}",
            hello.version
        )));
    }
    if hello.config_fp != cfg_fp {
        return Err(NetError::Handshake(format!(
            "peer {from} runs configuration {:#018x}, expected {cfg_fp:#018x}",
            hello.config_fp
        )));
    }
    {
        let mut inner = shared.inner.lock().expect("net lock");
        let p = &mut inner.peers[from];
        if p.last_auth.is_some_and(|s| msg.wire_seq <= s) {
            return Err(NetError::Handshake(format!("replayed hello from {from}")));
        }
        p.last_auth = Some(msg.wire_seq);
    }
    Ok((from, hello))
}

/// Wires a freshly handshaken stream into the node: registers clones
/// for shutdown, resends the retained Data frames the peer's Hello says
/// it is missing, spawns the writer and reader threads, marks the peer
/// connected (reviving it if it had been declared dead).
fn register_connection(
    shared: &Arc<Shared>,
    peer: usize,
    stream: TcpStream,
    peer_hello: &HelloBody,
) -> Result<(), NetError> {
    if shared.shutdown.load(Ordering::SeqCst) {
        return Err(NetError::Handshake("node shutting down".into()));
    }
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(None)?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let reader_stream = stream.try_clone()?;
    let writer_stream = stream.try_clone()?;
    shared.streams.lock().expect("net lock").push(stream);

    let (tx, rx) = mpsc::channel::<Vec<u8>>();
    {
        let mut inner = shared.inner.lock().expect("net lock");
        // Gap-resend, inside the same critical section that publishes
        // the sender: the resent frames are queued before any new
        // protocol frame can use this link, and in ascending `lseq`
        // order, so the peer's watermark only ever sees a monotone
        // `vsend` sequence. Frames the peer acknowledges are pruned.
        let lseqs: Vec<u64> = inner.peers[peer].retain.keys().copied().collect();
        for lseq in lseqs {
            if peer_hello.has(lseq) {
                inner.peers[peer].retain.remove(&lseq);
                continue;
            }
            let wire_seq = assign_wire_seq(shared, &mut inner, peer);
            let (vsend, vdeliver, body) = {
                let r = &inner.peers[peer].retain[&lseq];
                (r.vsend, r.vdeliver, r.body.clone())
            };
            let msg = WrapperMsg {
                kind: FrameKind::Data,
                from: shared.me as u32,
                to: peer as u32,
                wire_seq,
                lseq,
                vsend,
                vdeliver,
                body,
                mac: 0,
            }
            .signed(shared.key(peer));
            let bytes = frame(&msg.encode());
            inner.stats.frames_sent += 1;
            inner.stats.resent_frames += 1;
            inner.stats.bytes_sent += bytes.len() as u64;
            let _ = tx.send(bytes);
        }
        let revived = {
            let p = &mut inner.peers[peer];
            p.tx = Some(tx);
            p.connected = true;
            p.down_since = None;
            // A fresh connection starts from a clean promise slate, and
            // re-announces our Done if we already produced output. An
            // ack owed on the dropped connection is re-owed here (the
            // peer is done; its keepalive would re-ask anyway).
            p.last_promised = 0.0;
            p.done_notified = false;
            if p.done {
                p.ack_owed = true;
            }
            std::mem::replace(&mut p.dead, false)
        };
        if revived {
            inner.stats.revived_peers += 1;
        }
    }

    let sh = Arc::clone(shared);
    let writer = thread::spawn(move || writer_loop(&sh, peer, writer_stream, &rx));
    let sh = Arc::clone(shared);
    let reader = thread::spawn(move || reader_loop(&sh, peer, reader_stream));
    shared.writer_handles.lock().expect("net lock").push(writer);
    shared.aux_handles.lock().expect("net lock").push(reader);
    shared.cv.notify_all();
    Ok(())
}

fn mark_disconnected(shared: &Shared, peer: usize) {
    let mut inner = shared.inner.lock().expect("net lock");
    let p = &mut inner.peers[peer];
    if p.connected {
        p.connected = false;
        p.tx = None;
        p.down_since = Some(Instant::now());
    }
    drop(inner);
    shared.cv.notify_all();
}

fn writer_loop(shared: &Shared, peer: usize, mut stream: TcpStream, rx: &mpsc::Receiver<Vec<u8>>) {
    while let Ok(bytes) = rx.recv() {
        if stream.write_all(&bytes).is_err() {
            mark_disconnected(shared, peer);
            return;
        }
    }
    let _ = stream.flush();
}

fn reader_loop(shared: &Shared, peer: usize, mut stream: TcpStream) {
    let key = shared.key(peer);
    let mut fb = FrameBuffer::new();
    let mut buf = [0u8; 65536];
    let mut bad_streak = 0u32;
    'conn: loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let k = match stream.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(k) => k,
        };
        fb.push(&buf[..k]);
        loop {
            match fb.next_frame() {
                Ok(Some(payload)) => {
                    if handle_frame(shared, peer, key, &payload) {
                        bad_streak = 0;
                    } else {
                        bad_streak += 1;
                        if bad_streak >= REJECT_CUT_THRESHOLD {
                            // The stream has desynchronized from the
                            // frame layer (corruption below us): cut it
                            // and let reconnect + gap-resend rebuild a
                            // clean link.
                            let _ = stream.shutdown(Shutdown::Both);
                            break 'conn;
                        }
                    }
                }
                Ok(None) => break,
                // Oversized prefix: the stream is garbage; cut the link
                // (the reconnect machinery takes over).
                Err(_) => {
                    reject(shared, peer, |s| &mut s.rejected_malformed);
                    let _ = stream.shutdown(Shutdown::Both);
                    break 'conn;
                }
            }
        }
    }
    mark_disconnected(shared, peer);
}

/// Counts a rejected frame: bumps the chosen counter and queues a
/// `fault_drop` trace record for the main loop.
fn reject(shared: &Shared, peer: usize, counter: impl FnOnce(&mut NetStats) -> &mut u64) {
    let mut inner = shared.inner.lock().expect("net lock");
    *counter(&mut inner.stats) += 1;
    inner.peers[peer].pending_drops += 1;
    drop(inner);
    shared.cv.notify_all();
}

/// Authenticates and sorts one incoming frame. Rejected frames are
/// counted and traced, never delivered. Returns whether the frame was
/// accepted (duplicates count as accepted — they prove the stream is
/// healthy).
fn handle_frame(shared: &Shared, peer: usize, key: MacKey, payload: &[u8]) -> bool {
    let Ok(msg) = WrapperMsg::decode(payload) else {
        reject(shared, peer, |s| &mut s.rejected_malformed);
        return false;
    };
    if msg.from != peer as u32 || msg.to != shared.me as u32 || msg.kind == FrameKind::Hello {
        reject(shared, peer, |s| &mut s.rejected_malformed);
        return false;
    }
    if !msg.verify(key) {
        reject(shared, peer, |s| &mut s.rejected_mac);
        return false;
    }
    let mut inner = shared.inner.lock().expect("net lock");
    let stale = inner.peers[peer]
        .last_auth
        .is_some_and(|s| msg.wire_seq <= s);
    if stale {
        inner.stats.rejected_replay += 1;
        inner.peers[peer].pending_drops += 1;
        drop(inner);
        shared.cv.notify_all();
        return false;
    }
    inner.peers[peer].last_auth = Some(msg.wire_seq);
    inner.stats.frames_received += 1;
    inner.stats.bytes_received += payload.len() as u64 + 4;
    let min_delay = shared.min_delay;
    let Inner { peers, stats, .. } = &mut *inner;
    let p = &mut peers[peer];
    match msg.kind {
        FrameKind::Data => {
            // Future Data is sent at a clock ≥ vsend with delay > min.
            p.watermark = p.watermark.max(msg.vsend + min_delay);
            if p.have.contains(msg.lseq) {
                // A gap-resend we already delivered: the watermark gain
                // is kept, the payload is dropped without a trace event
                // (it is not a fault, just redundancy).
                stats.dup_frames += 1;
            } else {
                p.have.insert(msg.lseq);
                p.inbox.push_back(msg);
            }
        }
        FrameKind::Null => {
            // The promise IS the bound; no extra lookahead on top.
            p.watermark = p.watermark.max(msg.vsend);
        }
        FrameKind::Done => {
            // Possibly a keepalive re-announcement; setting the flags
            // again is idempotent, and every copy earns a fresh ack (the
            // previous ack may itself have been lost).
            p.done = true;
            p.ack_owed = true;
            p.watermark = p.watermark.max(msg.vsend + min_delay);
        }
        FrameKind::DoneAck => {
            p.done_acked = true;
            p.watermark = p.watermark.max(msg.vsend + min_delay);
        }
        FrameKind::Hello => unreachable!("filtered above"),
    }
    drop(inner);
    shared.cv.notify_all();
    true
}

/// Dials `peer`, performs the mutual Hello exchange, and registers the
/// connection.
///
/// `patience` is how long to wait for the peer's Hello response. The
/// initial bring-up passes the whole handshake budget: once our Hello
/// is written the peer may register this connection at any moment, so
/// abandoning it early and redialing would let the peer send the first
/// protocol frames into a dead socket — losing them, forcing a
/// retransmission, and (fatally for the differential gate) shifting
/// the delay schedule. Reconnects mid-run use a short patience instead;
/// a lost frame there is already the fault path `Reliable` covers.
fn dial_handshake(
    shared: &Arc<Shared>,
    cfg: &NodeConfig,
    peer: usize,
    patience: Duration,
) -> Result<(), NetError> {
    let mut stream = TcpStream::connect_timeout(&cfg.peers[peer], Duration::from_millis(500))?;
    stream.set_nodelay(true).ok();
    let hello = make_hello(shared, cfg.config_fp, peer);
    stream.write_all(&frame(&hello.encode()))?;
    stream.set_read_timeout(Some(patience))?;
    let payload = read_one_frame(&mut stream)?;
    let msg = WrapperMsg::decode(&payload).map_err(|e| NetError::Handshake(e.to_string()))?;
    let (_, peer_hello) = check_hello(shared, cfg.config_fp, &msg, Some(peer))?;
    register_connection(shared, peer, stream, &peer_hello)
}

/// One accepted connection: identify the dialer by its Hello, answer
/// with ours, register.
fn accept_handshake(
    shared: &Arc<Shared>,
    cfg: &NodeConfig,
    mut stream: TcpStream,
) -> Result<(), NetError> {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    let payload = read_one_frame(&mut stream)?;
    let msg = WrapperMsg::decode(&payload).map_err(|e| NetError::Handshake(e.to_string()))?;
    let (peer, peer_hello) = check_hello(shared, cfg.config_fp, &msg, None)?;
    if peer < shared.me {
        // Canonical direction: the higher index dials the lower.
        return Err(NetError::Handshake(format!(
            "peer {peer} must accept our dial, not dial us"
        )));
    }
    let hello = make_hello(shared, cfg.config_fp, peer);
    stream.write_all(&frame(&hello.encode()))?;
    register_connection(shared, peer, stream, &peer_hello)
}

/// Background reconnect attempts for a dialed peer; declares it dead
/// when the policy is exhausted.
fn reconnect_loop(shared: &Arc<Shared>, cfg: &NodeConfig, peer: usize) {
    for attempt in 0..cfg.reconnect.attempts {
        thread::sleep(cfg.reconnect.backoff(attempt));
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        {
            let mut inner = shared.inner.lock().expect("net lock");
            inner.transitions.push(Transition::Reconnect {
                peer,
                attempt: attempt as usize,
            });
            drop(inner);
            shared.cv.notify_all();
        }
        if dial_handshake(shared, cfg, peer, Duration::from_secs(2)).is_ok() {
            let mut inner = shared.inner.lock().expect("net lock");
            inner.stats.reconnects += 1;
            inner.peers[peer].reconnecting = false;
            drop(inner);
            shared.cv.notify_all();
            return;
        }
    }
    let mut inner = shared.inner.lock().expect("net lock");
    inner.transitions.push(Transition::BackoffExhausted {
        peer,
        attempts: cfg.reconnect.attempts as usize,
    });
    let p = &mut inner.peers[peer];
    p.reconnecting = false;
    let newly_dead = !p.dead && !p.connected;
    if newly_dead {
        p.dead = true;
        inner.stats.dead_peers += 1;
        inner.transitions.push(Transition::DeadPeer { peer });
    }
    drop(inner);
    shared.cv.notify_all();
}

/// Runs the protocol over real sockets until global termination.
///
/// `listener` must already be bound (bind first, share the address,
/// then start the cluster — this is what makes port assignment
/// race-free). `on_ready` fires once every link is up, right before
/// virtual time starts.
///
/// # Errors
///
/// [`NetError`] on configuration, handshake, wall-clock, or event-cap
/// failures. Peer crashes are *not* errors: the node keeps going and
/// lets the protocol degrade.
///
/// # Panics
///
/// Panics if an internal lock is poisoned (a helper thread panicked).
pub fn run_node<P, R>(
    cfg: &NodeConfig,
    listener: TcpListener,
    proto: P,
    on_ready: R,
) -> Result<NodeReport<P::Output>, NetError>
where
    P: AsyncProtocol,
    P::Msg: WireCodec,
    R: FnOnce(),
{
    run_node_durable(cfg, listener, proto, None, |_| 0, on_ready)
}

/// [`run_node`] with an optional write-ahead log and crash recovery.
///
/// `probe` fingerprints the protocol state; it is stamped into periodic
/// WAL marks and re-checked during replay, so a divergent recovery is
/// detected instead of silently corrupting the run. Pass `|_| 0` when
/// no meaningful fingerprint exists.
///
/// # Errors
///
/// Everything [`run_node`] returns, plus [`NetError::Recovery`] when an
/// existing WAL cannot be replayed (corrupt, mismatched configuration,
/// or diverged) and [`NetError::Io`] when an append fails mid-run.
///
/// # Panics
///
/// Panics if an internal lock is poisoned (a helper thread panicked).
pub fn run_node_durable<P, R, F>(
    cfg: &NodeConfig,
    listener: TcpListener,
    proto: P,
    durability: Option<&Durability>,
    probe: F,
    on_ready: R,
) -> Result<NodeReport<P::Output>, NetError>
where
    P: AsyncProtocol,
    P::Msg: WireCodec,
    R: FnOnce(),
    F: Fn(&P) -> u64,
{
    cfg.validate()?;

    // Open (or recover) the WAL before anything touches the network.
    let mut replay: Option<Vec<WalRecord>> = None;
    let wal_writer = match durability {
        None => None,
        Some(d) => {
            let header = cfg.wal_header();
            let existing = d.recover && std::fs::metadata(&d.wal_path).is_ok_and(|m| m.len() > 0);
            if existing {
                let scan = wal::read_wal(&d.wal_path)?;
                match scan.records.first() {
                    Some(WalRecord::Header(h)) if *h == header => {}
                    Some(WalRecord::Header(h)) => {
                        return Err(NetError::Recovery(format!(
                            "wal belongs to another run (config {:#018x}, expected {:#018x})",
                            h.config_fp, cfg.config_fp
                        )))
                    }
                    _ => return Err(NetError::Recovery("wal has no header record".into())),
                }
                let w = WalWriter::append_to(&d.wal_path, scan.valid_len)?;
                replay = Some(scan.records);
                Some(w)
            } else {
                Some(WalWriter::create(&d.wal_path, &header)?)
            }
        }
    };

    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            peers: (0..cfg.n).map(|_| PeerSt::new()).collect(),
            stats: NetStats::default(),
            transitions: Vec::new(),
            wal_error: None,
        }),
        cv: Condvar::new(),
        shutdown: AtomicBool::new(false),
        accepting: AtomicBool::new(false),
        wal: Mutex::new(wal_writer),
        streams: Mutex::new(Vec::new()),
        writer_handles: Mutex::new(Vec::new()),
        aux_handles: Mutex::new(Vec::new()),
        me: cfg.me,
        n: cfg.n,
        secret: cfg.secret,
        min_delay: cfg.min_delay,
    });

    // Lifetime acceptor: serves both the initial handshakes from higher
    // peers and any re-dials after a drop.
    listener.set_nonblocking(true)?;
    let acceptor = {
        let shared = Arc::clone(&shared);
        let cfg = cfg.clone();
        thread::spawn(move || loop {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            if !shared.accepting.load(Ordering::SeqCst) {
                // Replay in progress: let dialers wait in the backlog.
                thread::sleep(Duration::from_millis(3));
                continue;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    // Handshake concurrently: a serial acceptor would
                    // block peer k's Hello behind peer j's, long enough
                    // for k to give up a connection we then register —
                    // and the first frames written into it are lost.
                    stream.set_nonblocking(false).ok();
                    let sh = Arc::clone(&shared);
                    let hcfg = cfg.clone();
                    let h = thread::spawn(move || {
                        let _ = accept_handshake(&sh, &hcfg, stream);
                    });
                    shared.aux_handles.lock().expect("net lock").push(h);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(3))
                }
                Err(_) => thread::sleep(Duration::from_millis(3)),
            }
        })
    };

    let result = drive_node(cfg, &shared, proto, replay, &probe, on_ready);

    // Teardown: close writer channels and join the writers first so
    // queued frames (the final Done) are flushed, then tear down the
    // sockets to unblock readers, then join everything else.
    shared.shutdown.store(true, Ordering::SeqCst);
    {
        let mut inner = shared.inner.lock().expect("net lock");
        for p in &mut inner.peers {
            p.tx = None;
        }
    }
    shared.cv.notify_all();
    let writers = std::mem::take(&mut *shared.writer_handles.lock().expect("net lock"));
    for h in writers {
        let _ = h.join();
    }
    for s in shared.streams.lock().expect("net lock").iter() {
        let _ = s.shutdown(Shutdown::Both);
    }
    let aux = std::mem::take(&mut *shared.aux_handles.lock().expect("net lock"));
    for h in aux {
        let _ = h.join();
    }
    let _ = acceptor.join();
    result
}

/// Appends one record to the WAL, if one is attached.
fn append_wal(shared: &Shared, rec: &WalRecord) -> Result<(), NetError> {
    let mut wal = shared.wal.lock().expect("wal lock");
    if let Some(w) = wal.as_mut() {
        w.append(rec)
            .map_err(|e| NetError::Io(format!("wal append: {e}")))?;
    }
    Ok(())
}

/// The virtual-time main loop (see the module docs for the invariants).
#[allow(clippy::too_many_lines)]
fn drive_node<P, R>(
    cfg: &NodeConfig,
    shared: &Arc<Shared>,
    mut proto: P,
    replay: Option<Vec<WalRecord>>,
    probe: &dyn Fn(&P) -> u64,
    on_ready: R,
) -> Result<NodeReport<P::Output>, NetError>
where
    P: AsyncProtocol,
    P::Msg: WireCodec,
    R: FnOnce(),
{
    let me = cfg.me;
    let n = cfg.n;
    let start = Instant::now();

    let mut pending: BinaryHeap<Reverse<Pend<P::Msg>>> = BinaryHeap::new();
    let mut recorder = AsyncRecorder::new(n, cfg.t, &cfg.label);
    let mut vnow = 0.0f64;
    let mut timer_seq = 0u64;
    // Per-destination Data ordinals for my outgoing links (incl. self).
    let mut out_lseq = vec![0u64; n];
    let mut done_sent = false;
    let mut last_keepalive = Instant::now();
    let mut events_processed = 0u64;
    let mut retransmissions = 0u64;
    // Schedule debugging: dump every processed event key to stderr.
    let debug_events = std::env::var_os("TREEAA_NET_DEBUG").is_some();

    // A reusable closure would borrow too much; plain fn with the lot.
    // `live` is false during WAL replay: the protocol's reactions are
    // reconstructed (retention, lseq ordinals, timers, trace) but
    // nothing touches the wire — those frames were sent pre-crash.
    #[allow(clippy::too_many_arguments)]
    fn apply_parts<M: WireCodec + sim_net::Payload>(
        ctx: AsyncCtx<M>,
        vnow: f64,
        cfg: &NodeConfig,
        shared: &Shared,
        pending: &mut BinaryHeap<Reverse<Pend<M>>>,
        recorder: &mut AsyncRecorder,
        out_lseq: &mut [u64],
        timer_seq: &mut u64,
        retransmissions: &mut u64,
        live: bool,
    ) {
        let me = cfg.me;
        let parts = ctx.into_parts();
        for event in parts.events {
            recorder.record_proto(vnow, me, event);
        }
        if parts.retransmits > 0 && std::env::var_os("TREEAA_NET_DEBUG").is_some() {
            eprintln!("RETX node={me} t={vnow:.17} count={}", parts.retransmits);
        }
        *retransmissions += parts.retransmits as u64;
        for (delay, token) in parts.timers {
            let ts = *timer_seq;
            *timer_seq += 1;
            pending.push(Reverse(Pend {
                key: VKey {
                    time: vnow + delay,
                    class: 1,
                    a: me as u64,
                    b: ts,
                    c: token,
                },
                what: LocalEv::Timer(token),
                wire: None,
            }));
        }
        for env in parts.outbox {
            let to = env.to.index();
            let lseq = out_lseq[to];
            out_lseq[to] += 1;
            let delay = link_delay(cfg.seed, me, to, lseq, cfg.min_delay);
            let vdeliver = vnow + delay;
            if to == me {
                pending.push(Reverse(Pend {
                    key: VKey {
                        time: vdeliver,
                        class: 0,
                        a: me as u64,
                        b: me as u64,
                        c: lseq,
                    },
                    what: LocalEv::Deliver(env),
                    wire: None,
                }));
                continue;
            }
            let body = env.payload.to_bytes();
            let mut inner = shared.inner.lock().expect("net lock");
            {
                // Retain for handshake gap-resend, whatever the link
                // state: a reconnecting peer asks for history by lseq.
                let Inner { peers, stats, .. } = &mut *inner;
                let p = &mut peers[to];
                p.retain.insert(
                    lseq,
                    Retained {
                        vsend: vnow,
                        vdeliver,
                        body: body.clone(),
                    },
                );
                if p.retain.len() > RETAIN_CAP {
                    let oldest = *p.retain.keys().next().expect("nonempty");
                    p.retain.remove(&oldest);
                    stats.retain_evicted += 1;
                }
            }
            if !live {
                continue;
            }
            let wire_seq = assign_wire_seq(shared, &mut inner, to);
            let tx = inner.peers[to].tx.clone();
            match tx {
                Some(tx) => {
                    let msg = WrapperMsg {
                        kind: FrameKind::Data,
                        from: me as u32,
                        to: to as u32,
                        wire_seq,
                        lseq,
                        vsend: vnow,
                        vdeliver,
                        body,
                        mac: 0,
                    }
                    .signed(pair_key(cfg.secret, me, to));
                    let bytes = frame(&msg.encode());
                    inner.stats.frames_sent += 1;
                    inner.stats.bytes_sent += bytes.len() as u64;
                    drop(inner);
                    // A send error is surfaced by the writer thread.
                    let _ = tx.send(bytes);
                }
                None => {
                    // Link down: the frame is lost; Reliable retransmits
                    // (and the retention copy covers a later handshake).
                    inner.stats.send_drops += 1;
                }
            }
        }
    }

    // Control-frame sender (Null / Done).
    let send_ctl = |kind: FrameKind, to: usize, vsend: f64, inner: &mut Inner| {
        let wire_seq = assign_wire_seq(shared, inner, to);
        if let Some(tx) = inner.peers[to].tx.clone() {
            let msg = WrapperMsg {
                kind,
                from: me as u32,
                to: to as u32,
                wire_seq,
                lseq: 0,
                vsend,
                vdeliver: vsend,
                body: Vec::new(),
                mac: 0,
            }
            .signed(pair_key(cfg.secret, me, to));
            let bytes = frame(&msg.encode());
            if kind == FrameKind::Null {
                inner.stats.nulls_sent += 1;
            } else {
                inner.stats.frames_sent += 1;
            }
            inner.stats.bytes_sent += bytes.len() as u64;
            let _ = tx.send(bytes);
        }
    };

    // ---- WAL replay (crash recovery), before any link comes up ----
    let recovered = replay.is_some();
    if let Some(records) = replay {
        // The start activation, exactly as the pre-crash process ran it.
        let mut ctx = AsyncCtx::external(PartyId(me), n, 0.0, true);
        proto.on_start(&mut ctx);
        apply_parts(
            ctx,
            0.0,
            cfg,
            shared,
            &mut pending,
            &mut recorder,
            &mut out_lseq,
            &mut timer_seq,
            &mut retransmissions,
            false,
        );
        let mut replayed = 0u64;
        for rec in records {
            match rec {
                WalRecord::Header(_) => {}
                WalRecord::Reserve { peer, upto } => {
                    let mut inner = shared.inner.lock().expect("net lock");
                    let p = &mut inner.peers[peer];
                    p.out_wire_seq = p.out_wire_seq.max(upto);
                    p.wire_reserved = p.wire_reserved.max(upto);
                }
                WalRecord::Event(ev) => {
                    let key = VKey {
                        time: f64::from_bits(ev.time_bits),
                        class: ev.class,
                        a: ev.a,
                        b: ev.b,
                        c: ev.c,
                    };
                    let what = if let Some(r) = ev.remote {
                        let payload = P::Msg::from_bytes(&r.body).map_err(|e| {
                            NetError::Recovery(format!(
                                "wal event {replayed}: undecodable payload: {e}"
                            ))
                        })?;
                        let mut inner = shared.inner.lock().expect("net lock");
                        let p = &mut inner.peers[r.from];
                        p.have.insert(r.lseq);
                        // Re-prove the watermark this frame once proved.
                        let w = f64::from_bits(r.vsend_bits) + cfg.min_delay;
                        p.watermark = p.watermark.max(w);
                        drop(inner);
                        LocalEv::Deliver(Envelope {
                            from: PartyId(r.from),
                            to: PartyId(me),
                            payload,
                        })
                    } else {
                        // A locally generated event: deterministic
                        // replay must have it at the head of the heap.
                        let Some(Reverse(head)) = pending.pop() else {
                            return Err(NetError::Recovery(format!(
                                "wal event {replayed}: no pending local event"
                            )));
                        };
                        if head.key != key {
                            return Err(NetError::Recovery(format!(
                                "wal event {replayed}: schedule diverged"
                            )));
                        }
                        head.what
                    };
                    vnow = key.time;
                    replayed += 1;
                    events_processed += 1;
                    let mut ctx = AsyncCtx::external(PartyId(me), n, vnow, true);
                    match what {
                        LocalEv::Deliver(env) => proto.on_message(env, &mut ctx),
                        LocalEv::Timer(token) => proto.on_timer(token, &mut ctx),
                    }
                    apply_parts(
                        ctx,
                        vnow,
                        cfg,
                        shared,
                        &mut pending,
                        &mut recorder,
                        &mut out_lseq,
                        &mut timer_seq,
                        &mut retransmissions,
                        false,
                    );
                }
                WalRecord::Mark(m) => {
                    let fp = probe(&proto);
                    if fp != m.probe {
                        return Err(NetError::Recovery(format!(
                            "probe mismatch at {} events: logged {:016x}, replayed {fp:016x}",
                            m.events, m.probe
                        )));
                    }
                }
            }
        }
        recorder.record_net(
            vnow,
            EventKind::NetRecovery {
                party: me,
                replayed: replayed as usize,
            },
        );
    }
    shared.accepting.store(true, Ordering::SeqCst);

    // Initial link bring-up: dial lower peers (retrying while the
    // cluster boots), wait for higher peers to dial us. Two robustness
    // rules keep a lossy (chaos) network from burning the budget:
    // per-attempt patience is bounded well below the whole budget, and
    // a link that came up but dropped again while we wait for the rest
    // is redialed — the main loop's reconnect machinery is not running
    // yet, so the bring-up must do its own healing. An abandoned
    // half-open handshake is safe since wire v2: the redial
    // re-negotiates with the HaveSet, and any frame the peer sent into
    // the dead socket is gap-resent with its original schedule.
    let attempt_patience = cfg.handshake_timeout.min(Duration::from_secs(2));
    loop {
        for peer in 0..me {
            let up = {
                let inner = shared.inner.lock().expect("net lock");
                inner.peers[peer].connected
            };
            if !up {
                if let Err(e) = dial_handshake(shared, cfg, peer, attempt_patience) {
                    if debug_events {
                        eprintln!("DIAL node={me} peer={peer} retry after: {e}");
                    }
                }
            }
        }
        let inner = shared.inner.lock().expect("net lock");
        let up = (0..n)
            .filter(|&j| j != me)
            .filter(|&j| inner.peers[j].connected)
            .count();
        if up == n - 1 {
            break;
        }
        if start.elapsed() >= cfg.handshake_timeout {
            return Err(NetError::Handshake(format!("only {up}/{} links up", n - 1)));
        }
        let _ = shared
            .cv
            .wait_timeout(inner, Duration::from_millis(20))
            .expect("net lock");
    }
    on_ready();

    let wal_on = shared.wal.lock().expect("wal lock").is_some();

    if !recovered {
        // Virtual time starts: the protocol's one-shot start activation.
        let mut ctx = AsyncCtx::external(PartyId(me), n, 0.0, true);
        proto.on_start(&mut ctx);
        apply_parts(
            ctx,
            0.0,
            cfg,
            shared,
            &mut pending,
            &mut recorder,
            &mut out_lseq,
            &mut timer_seq,
            &mut retransmissions,
            true,
        );
    }

    loop {
        if start.elapsed() > cfg.wall_timeout {
            return Err(NetError::WallTimeout {
                elapsed_ms: start.elapsed().as_millis() as u64,
            });
        }

        // Drain shared state and snapshot the bound in ONE critical
        // section. The two must be atomic: a frame arriving between a
        // drain and a later bound computation would already have raised
        // its peer's watermark while still sitting undrained in the
        // inbox, letting the bound overtake its delivery time — and an
        // unrelated pending event could then be processed out of order.
        // With the atomic snapshot, every frame received after it has
        // `vdeliver` strictly above the snapshot watermark (FIFO links,
        // monotone sender clocks, delays > min_delay), hence above the
        // bound used for this processing pass.
        let mut frames = Vec::new();
        let mut drops = Vec::new();
        let transitions;
        let (bound, all_peers_finished, all_done_acked) = {
            let mut inner = shared.inner.lock().expect("net lock");
            if let Some(e) = inner.wal_error.take() {
                return Err(NetError::Io(format!("wal append: {e}")));
            }
            for j in (0..n).filter(|&j| j != me) {
                let p = &mut inner.peers[j];
                while let Some(m) = p.inbox.pop_front() {
                    frames.push(m);
                }
                if p.pending_drops > 0 {
                    drops.push((j, p.pending_drops));
                    p.pending_drops = 0;
                }
            }
            transitions = std::mem::take(&mut inner.transitions);
            let mut bound = f64::INFINITY;
            let mut finished = true;
            let mut acked = true;
            for j in (0..n).filter(|&j| j != me) {
                let p = &inner.peers[j];
                if !p.dead {
                    bound = bound.min(p.watermark);
                }
                finished &= p.done || p.dead;
                // A done peer that hung up has exited; it can no longer
                // acknowledge, and no longer needs to.
                acked &= p.done_acked || p.dead || (p.done && !p.connected);
            }
            (bound, finished, acked)
        };
        // All peers dead without an output: nothing can ever arrive and
        // the unbounded `bound` would let retransmission timers spin
        // the event loop to its cap. Fail fast instead.
        if bound.is_infinite() && !done_sent && n > 1 {
            return Err(NetError::Isolated {
                events: events_processed,
            });
        }

        let mut activity = !frames.is_empty() || !drops.is_empty();
        for (j, k) in drops {
            for _ in 0..k {
                recorder.record_drop(vnow, j, me);
            }
        }
        for tr in transitions {
            let kind = match tr {
                Transition::Reconnect { peer, attempt } => EventKind::NetReconnect {
                    party: me,
                    peer,
                    attempt,
                },
                Transition::BackoffExhausted { peer, attempts } => EventKind::NetBackoffExhausted {
                    party: me,
                    peer,
                    attempts,
                },
                Transition::DeadPeer { peer } => EventKind::NetDeadPeer { party: me, peer },
            };
            recorder.record_net(vnow, kind);
        }
        for mut m in frames {
            match P::Msg::from_bytes(&m.body) {
                Ok(payload) => pending.push(Reverse(Pend {
                    key: VKey {
                        time: m.vdeliver,
                        class: 0,
                        a: u64::from(m.from),
                        b: me as u64,
                        c: m.lseq,
                    },
                    what: LocalEv::Deliver(Envelope {
                        from: PartyId(m.from as usize),
                        to: PartyId(me),
                        payload,
                    }),
                    wire: wal_on.then(|| (m.vsend, std::mem::take(&mut m.body))),
                })),
                Err(_) => {
                    recorder.record_drop(vnow, m.from as usize, me);
                    shared
                        .inner
                        .lock()
                        .expect("net lock")
                        .stats
                        .rejected_malformed += 1;
                }
            }
        }

        // Process the safe prefix in the global VKey order.
        while pending.peek().is_some_and(|Reverse(p)| p.key.time <= bound) {
            let Reverse(ev) = pending.pop().expect("peeked");
            vnow = ev.key.time;
            events_processed += 1;
            if events_processed > cfg.max_events {
                return Err(NetError::Stalled {
                    events: events_processed,
                });
            }
            if debug_events {
                eprintln!(
                    "EV node={me} t={:.17} class={} a={} b={} c={}",
                    ev.key.time, ev.key.class, ev.key.a, ev.key.b, ev.key.c
                );
            }
            if wal_on {
                // Log the activation BEFORE it mutates the protocol:
                // a crash between the append and the activation just
                // replays one extra event.
                let remote = match (&ev.what, &ev.wire) {
                    (LocalEv::Deliver(env), Some((vsend, body))) if env.from.index() != me => {
                        Some(WalRemote {
                            from: env.from.index(),
                            lseq: ev.key.c,
                            vsend_bits: vsend.to_bits(),
                            body: body.clone(),
                        })
                    }
                    _ => None,
                };
                append_wal(
                    shared,
                    &WalRecord::Event(WalEvent {
                        time_bits: ev.key.time.to_bits(),
                        class: ev.key.class,
                        a: ev.key.a,
                        b: ev.key.b,
                        c: ev.key.c,
                        remote,
                    }),
                )?;
            }
            let mut ctx = AsyncCtx::external(PartyId(me), n, vnow, true);
            match ev.what {
                LocalEv::Deliver(env) => proto.on_message(env, &mut ctx),
                LocalEv::Timer(token) => proto.on_timer(token, &mut ctx),
            }
            apply_parts(
                ctx,
                vnow,
                cfg,
                shared,
                &mut pending,
                &mut recorder,
                &mut out_lseq,
                &mut timer_seq,
                &mut retransmissions,
                true,
            );
            if wal_on && events_processed.is_multiple_of(MARK_INTERVAL) {
                append_wal(
                    shared,
                    &WalRecord::Mark(WalMark {
                        time_bits: vnow.to_bits(),
                        events: events_processed,
                        probe: probe(&proto),
                    }),
                )?;
            }
            activity = true;
        }

        // Output reached: tell every peer that has not heard it on its
        // current connection (a reconnect re-announces).
        if proto.output().is_some() {
            let mut inner = shared.inner.lock().expect("net lock");
            for j in (0..n).filter(|&j| j != me) {
                let wants = {
                    let p = &inner.peers[j];
                    p.connected && !p.done_notified
                };
                if wants {
                    send_ctl(FrameKind::Done, j, vnow, &mut inner);
                    inner.peers[j].done_notified = true;
                    activity = true;
                }
            }
            done_sent = true;
        }

        // Acknowledge received Dones, and run the control-plane
        // keepalive: re-announce the current promise to peers still
        // working and our Done to peers that have not acknowledged it.
        // Control frames have no retransmission layer under them; the
        // periodic re-send is what makes their loss survivable.
        {
            let mut inner = shared.inner.lock().expect("net lock");
            for j in (0..n).filter(|&j| j != me) {
                let owed = {
                    let p = &inner.peers[j];
                    p.connected && p.ack_owed
                };
                if owed {
                    send_ctl(FrameKind::DoneAck, j, vnow, &mut inner);
                    inner.peers[j].ack_owed = false;
                }
            }
            if last_keepalive.elapsed() >= Duration::from_millis(KEEPALIVE_MS) {
                last_keepalive = Instant::now();
                for j in (0..n).filter(|&j| j != me) {
                    let (up, acked, peer_done, promised) = {
                        let p = &inner.peers[j];
                        (
                            p.connected && !p.dead,
                            p.done_acked,
                            p.done,
                            p.last_promised,
                        )
                    };
                    if !up {
                        continue;
                    }
                    if done_sent && !acked {
                        send_ctl(FrameKind::Done, j, vnow, &mut inner);
                    } else if !peer_done && promised > 0.0 {
                        send_ctl(FrameKind::Null, j, promised, &mut inner);
                    }
                }
            }
        }

        if done_sent && all_peers_finished && all_done_acked {
            break;
        }

        // Promise the new bound: any future Data from us is strictly
        // beyond `bound + min_delay` (activations happen after `bound`,
        // delays strictly exceed `min_delay`).
        if bound.is_finite() {
            let promise = bound + cfg.min_delay;
            let mut inner = shared.inner.lock().expect("net lock");
            for j in (0..n).filter(|&j| j != me) {
                let wants = {
                    let p = &inner.peers[j];
                    p.connected && !p.dead && promise > p.last_promised
                };
                if wants {
                    send_ctl(FrameKind::Null, j, promise, &mut inner);
                    inner.peers[j].last_promised = promise;
                }
            }
        }

        // Liveness bookkeeping: promote silent links to dead, kick
        // reconnects for peers we dial.
        {
            let mut inner = shared.inner.lock().expect("net lock");
            for j in (0..n).filter(|&j| j != me) {
                let p = &mut inner.peers[j];
                if p.connected || p.dead {
                    continue;
                }
                // Endgame: every peer is finished and this one hung up
                // after sending its Done — it has exited. Redialing
                // would only be refused, and nothing is owed either way.
                if p.done && done_sent && all_peers_finished {
                    continue;
                }
                let down_for = p.down_since.map_or(Duration::ZERO, |t| t.elapsed());
                if down_for >= Duration::from_millis(cfg.reconnect.dead_after_ms) {
                    p.dead = true;
                    p.reconnecting = false;
                    inner.stats.dead_peers += 1;
                    inner.transitions.push(Transition::DeadPeer { peer: j });
                } else if j < me && !p.reconnecting {
                    p.reconnecting = true;
                    let sh = Arc::clone(shared);
                    let th_cfg = cfg.clone();
                    let handle = thread::spawn(move || reconnect_loop(&sh, &th_cfg, j));
                    shared.aux_handles.lock().expect("net lock").push(handle);
                }
            }
        }

        if !activity {
            let inner = shared.inner.lock().expect("net lock");
            let _ = shared
                .cv
                .wait_timeout(inner, Duration::from_millis(3))
                .expect("net lock");
        }
    }

    let mut stats = {
        let inner = shared.inner.lock().expect("net lock");
        inner.stats
    };
    stats.retransmissions = retransmissions;
    Ok(NodeReport {
        output: proto.output(),
        trace: recorder.into_trace(),
        stats,
        vtime: vnow,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_from_base_and_respects_the_cap() {
        let p = ReconnectPolicy {
            attempts: 10,
            base_delay_ms: 25,
            max_delay_ms: 400,
            dead_after_ms: 1500,
        };
        assert_eq!(p.backoff(0), Duration::from_millis(25));
        assert_eq!(p.backoff(1), Duration::from_millis(50));
        assert_eq!(p.backoff(2), Duration::from_millis(100));
        assert_eq!(p.backoff(3), Duration::from_millis(200));
        assert_eq!(p.backoff(4), Duration::from_millis(400));
        assert_eq!(p.backoff(5), Duration::from_millis(400));
        // The shift is clamped: huge attempt counts neither overflow
        // nor wrap below the cap.
        assert_eq!(p.backoff(63), Duration::from_millis(400));
    }

    #[test]
    fn have_set_compacts_the_contiguous_prefix() {
        let mut h = HaveSet::default();
        assert!(!h.contains(0));
        h.insert(0);
        h.insert(2);
        h.insert(4);
        assert_eq!(h.prefix, 1);
        assert!(h.contains(0) && h.contains(2) && !h.contains(1) && !h.contains(3));
        h.insert(1);
        // 1 closes the gap; 2 is absorbed from extras, 3 is still open.
        assert_eq!(h.prefix, 3);
        assert_eq!(h.extras.iter().copied().collect::<Vec<_>>(), vec![4]);
        h.insert(3);
        assert_eq!(h.prefix, 5);
        assert!(h.extras.is_empty());
        // Re-inserting below the prefix is a no-op.
        h.insert(0);
        assert_eq!(h.prefix, 5);
    }

    /// A protocol that outputs immediately and never sends anything —
    /// the node's liveness machinery is the entire subject under test.
    struct InstantProto;

    impl AsyncProtocol for InstantProto {
        type Msg = u64;
        type Output = u8;

        fn on_start(&mut self, _ctx: &mut AsyncCtx<u64>) {}

        fn on_message(&mut self, _env: Envelope<u64>, _ctx: &mut AsyncCtx<u64>) {}

        fn output(&self) -> Option<u8> {
            Some(1)
        }
    }

    /// Binds a fake peer-0 listener, answers exactly one handshake,
    /// then goes silent or deaf per the scenario.
    fn fake_peer_zero(secret: u64, cfg_fp: u64) -> (std::net::TcpListener, SocketAddr) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let _ = (secret, cfg_fp);
        (listener, addr)
    }

    fn answer_one_handshake(listener: &std::net::TcpListener, secret: u64, cfg_fp: u64) {
        let (mut stream, _) = listener.accept().expect("accept");
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .expect("timeout");
        let payload = read_one_frame(&mut stream).expect("node hello");
        let msg = WrapperMsg::decode(&payload).expect("decode hello");
        assert_eq!(msg.kind, FrameKind::Hello);
        let reply = WrapperMsg {
            kind: FrameKind::Hello,
            from: 0,
            to: 1,
            wire_seq: 0,
            lseq: 0,
            vsend: 0.0,
            vdeliver: 0.0,
            body: HelloBody {
                config_fp: cfg_fp,
                version: WIRE_VERSION,
                have_prefix: 0,
                have_extras: Vec::new(),
            }
            .to_bytes(),
            mac: 0,
        }
        .signed(pair_key(secret, 0, 1));
        stream.write_all(&frame(&reply.encode())).expect("reply");
        // Linger briefly so the node's first frames have a live socket,
        // then cut the connection.
        thread::sleep(Duration::from_millis(60));
        let _ = stream.shutdown(Shutdown::Both);
    }

    fn scripted_disconnect_trace(policy: ReconnectPolicy) -> (Trace, NetStats) {
        let secret = 0x5eed;
        let cfg_fp = 0xfeed_f00d;
        let (peer_listener, peer_addr) = fake_peer_zero(secret, cfg_fp);
        let my_listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let my_addr = my_listener.local_addr().expect("addr");

        let fake = thread::spawn(move || {
            answer_one_handshake(&peer_listener, secret, cfg_fp);
            // Dropping the listener here makes every reconnect dial
            // fail fast with a refusal instead of a slow timeout.
            drop(peer_listener);
        });

        let mut cfg = NodeConfig::new(1, 2, 0, vec![peer_addr, my_addr], secret, cfg_fp, 7);
        cfg.reconnect = policy;
        cfg.handshake_timeout = Duration::from_secs(5);
        cfg.wall_timeout = Duration::from_secs(20);
        let report = run_node(&cfg, my_listener, InstantProto, || {}).expect("node run");
        fake.join().expect("fake peer");
        assert_eq!(report.output, Some(1));
        (report.trace, report.stats)
    }

    #[test]
    fn a_scripted_disconnect_traces_reconnects_then_exhaustion_then_death() {
        let (trace, stats) = scripted_disconnect_trace(ReconnectPolicy {
            attempts: 3,
            base_delay_ms: 5,
            max_delay_ms: 20,
            dead_after_ms: 60_000,
        });
        let fault_events: Vec<&EventKind> = trace
            .events
            .iter()
            .map(|e| &e.kind)
            .filter(|k| {
                matches!(
                    k,
                    EventKind::NetReconnect { .. }
                        | EventKind::NetBackoffExhausted { .. }
                        | EventKind::NetDeadPeer { .. }
                )
            })
            .collect();
        // Exactly: one reconnect attempt per policy slot, then the
        // exhaustion marker, then the dead-peer declaration.
        assert_eq!(fault_events.len(), 5, "events: {fault_events:?}");
        for (i, ev) in fault_events.iter().take(3).enumerate() {
            assert_eq!(
                **ev,
                EventKind::NetReconnect {
                    party: 1,
                    peer: 0,
                    attempt: i
                }
            );
        }
        assert_eq!(
            *fault_events[3],
            EventKind::NetBackoffExhausted {
                party: 1,
                peer: 0,
                attempts: 3
            }
        );
        assert_eq!(
            *fault_events[4],
            EventKind::NetDeadPeer { party: 1, peer: 0 }
        );
        assert_eq!(stats.dead_peers, 1);
        assert_eq!(stats.reconnects, 0);
    }

    #[test]
    fn the_dead_peer_deadline_fires_without_waiting_for_backoff_exhaustion() {
        let (trace, stats) = scripted_disconnect_trace(ReconnectPolicy {
            attempts: 100,
            base_delay_ms: 200,
            max_delay_ms: 200,
            dead_after_ms: 40,
        });
        assert!(trace
            .events
            .iter()
            .any(|e| e.kind == EventKind::NetDeadPeer { party: 1, peer: 0 }));
        assert!(!trace
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::NetBackoffExhausted { .. })));
        assert_eq!(stats.dead_peers, 1);
    }
}
