//! A real TCP node driving an [`AsyncProtocol`] deterministically.
//!
//! Each node owns one OS process (or thread, in the loopback cluster),
//! talks to its peers over plain `TcpStream`s carrying MAC-authenticated
//! [`WrapperMsg`] envelopes, and replays — bit for bit — the schedule the
//! in-process [`async_net::VirtualScheduler`] would produce for the same
//! `(n, seed, min_delay)`. The trick is conservative virtual-time
//! synchronization (Chandy–Misra–Bryant null messages):
//!
//! * Every Data frame carries its virtual send time and its
//!   content-keyed virtual delivery time `vdeliver = vsend +`
//!   [`async_net::link_delay`], computed from the per-link Data ordinal
//!   `lseq` that travels in the envelope.
//! * For each peer the node maintains a **watermark** `L_j`: a proven
//!   lower bound such that every Data frame still to arrive from `j` has
//!   `vdeliver > L_j`. A Data or Done frame with send time `s` raises it
//!   to `s + min_delay` (the sender's clock is monotone and every delay
//!   strictly exceeds `min_delay`); a Null frame raises it to the
//!   explicit promise it carries.
//! * Pending events (arrived Data, local timers, self-deliveries) are
//!   processed in the global [`VKey`] order, but only while their time is
//!   at most `bound = min_j L_j` — so no event can ever arrive "in the
//!   past", and the node's activation order equals the reference
//!   schedule restricted to this party.
//! * After draining, the node promises `bound + min_delay` to its peers:
//!   any later activation happens strictly after `bound`, so any later
//!   Data has `vdeliver > bound + min_delay`. Mutual promises advance
//!   idle nodes by `min_delay` per exchange, which is what lets silence
//!   timers fire even when crashed peers send nothing.
//!
//! Termination: a node that produced its output broadcasts a Done frame
//! and keeps cooperating (acks, echo relays) until every peer is done or
//! dead, then tears the links down. Connection loss triggers capped-
//! backoff reconnects by the dialing side (`i` dials every `j < i`);
//! a peer unreachable past the policy's deadline is declared dead and
//! excluded from the bound, leaving protocol-level degradation to the
//! silence-evidence machinery above the transport.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;
use std::io::{self, ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use aa_trace::Trace;
use async_net::{link_delay, AsyncCtx, AsyncProtocol, AsyncRecorder, VKey};
use sim_net::{Envelope, PartyId};

use crate::codec::WireCodec;
use crate::frame::{frame, FrameBuffer, MAX_FRAME, PREFIX_LEN};
use crate::mac::{pair_key, MacKey};
use crate::wire::{FrameKind, HelloBody, WrapperMsg, WIRE_VERSION};

/// Reconnection behaviour after a link drops.
#[derive(Clone, Copy, Debug)]
pub struct ReconnectPolicy {
    /// Dial attempts before giving up on a peer.
    pub attempts: u32,
    /// Delay before the first retry; doubles per attempt.
    pub base_delay_ms: u64,
    /// Cap on the per-attempt delay.
    pub max_delay_ms: u64,
    /// A peer disconnected for this long is declared dead even on the
    /// accepting side (which cannot dial).
    pub dead_after_ms: u64,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        ReconnectPolicy {
            attempts: 4,
            base_delay_ms: 25,
            max_delay_ms: 400,
            dead_after_ms: 1500,
        }
    }
}

impl ReconnectPolicy {
    fn backoff(&self, attempt: u32) -> Duration {
        let ms = self
            .base_delay_ms
            .saturating_mul(1u64 << attempt.min(16))
            .min(self.max_delay_ms);
        Duration::from_millis(ms)
    }
}

/// Everything a node needs to join a cluster.
#[derive(Clone, Debug)]
pub struct NodeConfig {
    /// This node's party index.
    pub me: usize,
    /// Number of parties.
    pub n: usize,
    /// Corruption bound (recorded in the trace header).
    pub t: usize,
    /// Peer addresses, indexed by party; `peers[me]` is ignored.
    pub peers: Vec<SocketAddr>,
    /// Shared cluster secret the pairwise MAC keys derive from.
    pub secret: u64,
    /// Fingerprint of the run configuration, checked in the handshake.
    pub config_fp: u64,
    /// Seed of the deterministic delay schedule.
    pub seed: u64,
    /// Per-link lookahead; must match the reference run's delay floor.
    pub min_delay: f64,
    /// Trace label.
    pub label: String,
    /// Reconnect policy.
    pub reconnect: ReconnectPolicy,
    /// How long to wait for all links to come up initially.
    pub handshake_timeout: Duration,
    /// Hard wall-clock cap on the whole run.
    pub wall_timeout: Duration,
    /// Hard cap on processed virtual events (runaway guard).
    pub max_events: u64,
}

impl NodeConfig {
    /// A configuration with the transport defaults (`min_delay` 0.5,
    /// 10 s handshake, 60 s wall cap, 2 M events).
    #[must_use]
    pub fn new(
        me: usize,
        n: usize,
        t: usize,
        peers: Vec<SocketAddr>,
        secret: u64,
        config_fp: u64,
        seed: u64,
    ) -> Self {
        NodeConfig {
            me,
            n,
            t,
            peers,
            secret,
            config_fp,
            seed,
            min_delay: 0.5,
            label: "net".into(),
            reconnect: ReconnectPolicy::default(),
            handshake_timeout: Duration::from_secs(10),
            wall_timeout: Duration::from_secs(60),
            max_events: 2_000_000,
        }
    }

    fn validate(&self) -> Result<(), NetError> {
        if self.me >= self.n {
            return Err(NetError::Config(format!(
                "me = {} out of range for n = {}",
                self.me, self.n
            )));
        }
        if self.peers.len() != self.n {
            return Err(NetError::Config(format!(
                "expected {} peer addresses, got {}",
                self.n,
                self.peers.len()
            )));
        }
        if !(0.0..1.0).contains(&self.min_delay) {
            return Err(NetError::Config(format!(
                "min_delay {} outside [0, 1)",
                self.min_delay
            )));
        }
        Ok(())
    }
}

/// A transport-level failure of a node run.
#[derive(Clone, Debug)]
pub enum NetError {
    /// The configuration is internally inconsistent.
    Config(String),
    /// A socket operation failed irrecoverably.
    Io(String),
    /// The cluster's links did not all come up (or a peer presented a
    /// mismatching configuration fingerprint / wire version).
    Handshake(String),
    /// The wall-clock cap elapsed before termination.
    WallTimeout {
        /// Elapsed time when the run was abandoned.
        elapsed_ms: u64,
    },
    /// The event cap was hit — the run stopped making real progress.
    Stalled {
        /// Events processed when the run was abandoned.
        events: u64,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Config(m) => write!(f, "config error: {m}"),
            NetError::Io(m) => write!(f, "io error: {m}"),
            NetError::Handshake(m) => write!(f, "handshake failed: {m}"),
            NetError::WallTimeout { elapsed_ms } => {
                write!(f, "wall-clock timeout after {elapsed_ms} ms")
            }
            NetError::Stalled { events } => write!(f, "stalled after {events} events"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e.to_string())
    }
}

/// Transport counters, reported per node.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Data/Done/Hello frames sent.
    pub frames_sent: u64,
    /// Authenticated frames received (all kinds).
    pub frames_received: u64,
    /// Null (virtual-time promise) frames sent.
    pub nulls_sent: u64,
    /// Payload bytes enqueued to writers.
    pub bytes_sent: u64,
    /// Payload bytes received.
    pub bytes_received: u64,
    /// Frames rejected for a bad MAC.
    pub rejected_mac: u64,
    /// Frames rejected as replays (stale `wire_seq`).
    pub rejected_replay: u64,
    /// Frames rejected as structurally malformed.
    pub rejected_malformed: u64,
    /// Successful reconnects.
    pub reconnects: u64,
    /// Protocol-level retransmissions (from the `Reliable` layer).
    pub retransmissions: u64,
    /// Peers declared dead.
    pub dead_peers: u64,
    /// Data frames dropped because the link was down when sending.
    pub send_drops: u64,
}

/// What a completed (or degraded-but-terminated) node run produced.
#[derive(Clone, Debug)]
pub struct NodeReport<O> {
    /// The protocol's output, if it decided.
    pub output: Option<O>,
    /// This node's recorded trace (its own proto events + transport
    /// drops), ready for [`aa_trace::merge_traces`].
    pub trace: Trace,
    /// Transport counters.
    pub stats: NetStats,
    /// Final virtual time.
    pub vtime: f64,
}

/// Per-peer shared state, written by reader/acceptor/reconnect threads
/// and drained by the main loop.
#[derive(Debug)]
struct PeerSt {
    inbox: VecDeque<WrapperMsg>,
    /// Lower bound on future Data `vdeliver` from this peer.
    watermark: f64,
    /// Highest authenticated incoming `wire_seq` (replay filter).
    last_auth: Option<u64>,
    /// Next outgoing `wire_seq` on this link.
    out_wire_seq: u64,
    /// Highest promise already sent to this peer.
    last_promised: f64,
    done: bool,
    dead: bool,
    connected: bool,
    reconnecting: bool,
    down_since: Option<Instant>,
    /// Rejections not yet recorded in the trace (count since last drain).
    pending_drops: u64,
    tx: Option<mpsc::Sender<Vec<u8>>>,
}

impl PeerSt {
    fn new() -> Self {
        PeerSt {
            inbox: VecDeque::new(),
            watermark: 0.0,
            last_auth: None,
            out_wire_seq: 0,
            last_promised: 0.0,
            done: false,
            dead: false,
            connected: false,
            reconnecting: false,
            down_since: None,
            pending_drops: 0,
            tx: None,
        }
    }
}

#[derive(Debug)]
struct Inner {
    peers: Vec<PeerSt>,
    stats: NetStats,
}

struct Shared {
    inner: Mutex<Inner>,
    cv: Condvar,
    shutdown: AtomicBool,
    /// Stream clones registered for unblocking shutdown.
    streams: Mutex<Vec<TcpStream>>,
    /// Writer threads: joined *before* the sockets are torn down so
    /// queued frames (the final Done) still reach the wire.
    writer_handles: Mutex<Vec<JoinHandle<()>>>,
    /// Reader and reconnect threads: unblocked by the socket shutdown
    /// and the shutdown flag, joined last.
    aux_handles: Mutex<Vec<JoinHandle<()>>>,
    me: usize,
    n: usize,
    secret: u64,
    min_delay: f64,
}

impl Shared {
    fn key(&self, peer: usize) -> MacKey {
        pair_key(self.secret, self.me, peer)
    }
}

/// A locally pending virtual event.
enum LocalEv<M> {
    Deliver(Envelope<M>),
    Timer(u64),
}

struct Pend<M> {
    key: VKey,
    what: LocalEv<M>,
}

impl<M> PartialEq for Pend<M> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<M> Eq for Pend<M> {}
impl<M> PartialOrd for Pend<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Pend<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// Reads exactly one frame from `stream` (which must have a read
/// timeout set), failing on EOF, timeout, or framing errors.
///
/// This must consume EXACTLY the frame's bytes, never more: the peer's
/// first protocol frames can already sit behind the Hello in the socket
/// buffer (the peer registers the link the moment its Hello response is
/// written, and may start the protocol before we finish reading it). A
/// buffered read here would swallow those frames and silently lose
/// them — forcing retransmissions that shift the whole delay schedule.
fn read_one_frame(stream: &mut TcpStream) -> Result<Vec<u8>, NetError> {
    let mut prefix = [0u8; PREFIX_LEN];
    stream.read_exact(&mut prefix).map_err(map_handshake_eof)?;
    let len = u32::from_be_bytes(prefix) as usize;
    if len > MAX_FRAME {
        return Err(NetError::Handshake(format!(
            "oversized handshake frame ({len} bytes)"
        )));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload).map_err(map_handshake_eof)?;
    Ok(payload)
}

fn map_handshake_eof(e: io::Error) -> NetError {
    if e.kind() == ErrorKind::UnexpectedEof {
        NetError::Handshake("connection closed mid-handshake".into())
    } else {
        NetError::from(e)
    }
}

fn make_hello(shared: &Shared, cfg_fp: u64, peer: usize) -> WrapperMsg {
    let wire_seq = {
        let mut inner = shared.inner.lock().expect("net lock");
        let p = &mut inner.peers[peer];
        let s = p.out_wire_seq;
        p.out_wire_seq += 1;
        s
    };
    WrapperMsg {
        kind: FrameKind::Hello,
        from: shared.me as u32,
        to: peer as u32,
        wire_seq,
        lseq: 0,
        vsend: 0.0,
        vdeliver: 0.0,
        body: HelloBody {
            config_fp: cfg_fp,
            version: WIRE_VERSION,
        }
        .to_bytes(),
        mac: 0,
    }
    .signed(shared.key(peer))
}

/// Authenticates an incoming Hello against `expected_from` (or any peer
/// if `None`), returning the sender. Updates the replay filter.
fn check_hello(
    shared: &Shared,
    cfg_fp: u64,
    msg: &WrapperMsg,
    expected_from: Option<usize>,
) -> Result<usize, NetError> {
    if msg.kind != FrameKind::Hello {
        return Err(NetError::Handshake("first frame is not a Hello".into()));
    }
    let from = msg.from as usize;
    if from >= shared.n || from == shared.me || msg.to != shared.me as u32 {
        return Err(NetError::Handshake(format!(
            "hello addressed {} -> {}",
            msg.from, msg.to
        )));
    }
    if let Some(exp) = expected_from {
        if from != exp {
            return Err(NetError::Handshake(format!(
                "expected hello from {exp}, got {from}"
            )));
        }
    }
    if !msg.verify(shared.key(from)) {
        return Err(NetError::Handshake(format!(
            "hello from {from} failed authentication"
        )));
    }
    let hello = HelloBody::from_bytes(&msg.body).map_err(|e| NetError::Handshake(e.to_string()))?;
    if hello.version != WIRE_VERSION {
        return Err(NetError::Handshake(format!(
            "peer {from} speaks wire version {}, expected {WIRE_VERSION}",
            hello.version
        )));
    }
    if hello.config_fp != cfg_fp {
        return Err(NetError::Handshake(format!(
            "peer {from} runs configuration {:#018x}, expected {cfg_fp:#018x}",
            hello.config_fp
        )));
    }
    {
        let mut inner = shared.inner.lock().expect("net lock");
        let p = &mut inner.peers[from];
        if p.last_auth.is_some_and(|s| msg.wire_seq <= s) {
            return Err(NetError::Handshake(format!("replayed hello from {from}")));
        }
        p.last_auth = Some(msg.wire_seq);
    }
    Ok(from)
}

/// Wires a freshly handshaken stream into the node: registers clones
/// for shutdown, spawns the writer and reader threads, marks the peer
/// connected.
fn register_connection(
    shared: &Arc<Shared>,
    peer: usize,
    stream: TcpStream,
) -> Result<(), NetError> {
    if shared.shutdown.load(Ordering::SeqCst) {
        return Err(NetError::Handshake("node shutting down".into()));
    }
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(None)?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let reader_stream = stream.try_clone()?;
    let writer_stream = stream.try_clone()?;
    shared.streams.lock().expect("net lock").push(stream);

    let (tx, rx) = mpsc::channel::<Vec<u8>>();
    {
        let mut inner = shared.inner.lock().expect("net lock");
        let p = &mut inner.peers[peer];
        p.tx = Some(tx);
        p.connected = true;
        p.down_since = None;
    }

    let sh = Arc::clone(shared);
    let writer = thread::spawn(move || writer_loop(&sh, peer, writer_stream, &rx));
    let sh = Arc::clone(shared);
    let reader = thread::spawn(move || reader_loop(&sh, peer, reader_stream));
    shared.writer_handles.lock().expect("net lock").push(writer);
    shared.aux_handles.lock().expect("net lock").push(reader);
    shared.cv.notify_all();
    Ok(())
}

fn mark_disconnected(shared: &Shared, peer: usize) {
    let mut inner = shared.inner.lock().expect("net lock");
    let p = &mut inner.peers[peer];
    if p.connected {
        p.connected = false;
        p.tx = None;
        p.down_since = Some(Instant::now());
    }
    drop(inner);
    shared.cv.notify_all();
}

fn writer_loop(shared: &Shared, peer: usize, mut stream: TcpStream, rx: &mpsc::Receiver<Vec<u8>>) {
    while let Ok(bytes) = rx.recv() {
        if stream.write_all(&bytes).is_err() {
            mark_disconnected(shared, peer);
            return;
        }
    }
    let _ = stream.flush();
}

fn reader_loop(shared: &Shared, peer: usize, mut stream: TcpStream) {
    let key = shared.key(peer);
    let mut fb = FrameBuffer::new();
    let mut buf = [0u8; 65536];
    'conn: loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let k = match stream.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(k) => k,
        };
        fb.push(&buf[..k]);
        loop {
            match fb.next_frame() {
                Ok(Some(payload)) => handle_frame(shared, peer, key, &payload),
                Ok(None) => break,
                // Oversized prefix: the stream is garbage; cut the link
                // (the reconnect machinery takes over).
                Err(_) => {
                    reject(shared, peer, |s| &mut s.rejected_malformed);
                    let _ = stream.shutdown(Shutdown::Both);
                    break 'conn;
                }
            }
        }
    }
    mark_disconnected(shared, peer);
}

/// Counts a rejected frame: bumps the chosen counter and queues a
/// `fault_drop` trace record for the main loop.
fn reject(shared: &Shared, peer: usize, counter: impl FnOnce(&mut NetStats) -> &mut u64) {
    let mut inner = shared.inner.lock().expect("net lock");
    *counter(&mut inner.stats) += 1;
    inner.peers[peer].pending_drops += 1;
    drop(inner);
    shared.cv.notify_all();
}

/// Authenticates and sorts one incoming frame. Rejected frames are
/// counted and traced, never delivered.
fn handle_frame(shared: &Shared, peer: usize, key: MacKey, payload: &[u8]) {
    let Ok(msg) = WrapperMsg::decode(payload) else {
        reject(shared, peer, |s| &mut s.rejected_malformed);
        return;
    };
    if msg.from != peer as u32 || msg.to != shared.me as u32 || msg.kind == FrameKind::Hello {
        reject(shared, peer, |s| &mut s.rejected_malformed);
        return;
    }
    if !msg.verify(key) {
        reject(shared, peer, |s| &mut s.rejected_mac);
        return;
    }
    let mut inner = shared.inner.lock().expect("net lock");
    let stale = inner.peers[peer]
        .last_auth
        .is_some_and(|s| msg.wire_seq <= s);
    if stale {
        inner.stats.rejected_replay += 1;
        inner.peers[peer].pending_drops += 1;
        drop(inner);
        shared.cv.notify_all();
        return;
    }
    inner.peers[peer].last_auth = Some(msg.wire_seq);
    inner.stats.frames_received += 1;
    inner.stats.bytes_received += payload.len() as u64 + 4;
    let min_delay = shared.min_delay;
    let p = &mut inner.peers[peer];
    match msg.kind {
        FrameKind::Data => {
            // Future Data is sent at a clock ≥ vsend with delay > min.
            p.watermark = p.watermark.max(msg.vsend + min_delay);
            p.inbox.push_back(msg);
        }
        FrameKind::Null => {
            // The promise IS the bound; no extra lookahead on top.
            p.watermark = p.watermark.max(msg.vsend);
        }
        FrameKind::Done => {
            p.done = true;
            p.watermark = p.watermark.max(msg.vsend + min_delay);
        }
        FrameKind::Hello => unreachable!("filtered above"),
    }
    drop(inner);
    shared.cv.notify_all();
}

/// Dials `peer`, performs the mutual Hello exchange, and registers the
/// connection.
///
/// `patience` is how long to wait for the peer's Hello response. The
/// initial bring-up passes the whole handshake budget: once our Hello
/// is written the peer may register this connection at any moment, so
/// abandoning it early and redialing would let the peer send the first
/// protocol frames into a dead socket — losing them, forcing a
/// retransmission, and (fatally for the differential gate) shifting
/// the delay schedule. Reconnects mid-run use a short patience instead;
/// a lost frame there is already the fault path `Reliable` covers.
fn dial_handshake(
    shared: &Arc<Shared>,
    cfg: &NodeConfig,
    peer: usize,
    patience: Duration,
) -> Result<(), NetError> {
    let mut stream = TcpStream::connect_timeout(&cfg.peers[peer], Duration::from_millis(500))?;
    stream.set_nodelay(true).ok();
    let hello = make_hello(shared, cfg.config_fp, peer);
    stream.write_all(&frame(&hello.encode()))?;
    stream.set_read_timeout(Some(patience))?;
    let payload = read_one_frame(&mut stream)?;
    let msg = WrapperMsg::decode(&payload).map_err(|e| NetError::Handshake(e.to_string()))?;
    check_hello(shared, cfg.config_fp, &msg, Some(peer))?;
    register_connection(shared, peer, stream)
}

/// One accepted connection: identify the dialer by its Hello, answer
/// with ours, register.
fn accept_handshake(
    shared: &Arc<Shared>,
    cfg: &NodeConfig,
    mut stream: TcpStream,
) -> Result<(), NetError> {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    let payload = read_one_frame(&mut stream)?;
    let msg = WrapperMsg::decode(&payload).map_err(|e| NetError::Handshake(e.to_string()))?;
    let peer = check_hello(shared, cfg.config_fp, &msg, None)?;
    if peer < shared.me {
        // Canonical direction: the higher index dials the lower.
        return Err(NetError::Handshake(format!(
            "peer {peer} must accept our dial, not dial us"
        )));
    }
    let hello = make_hello(shared, cfg.config_fp, peer);
    stream.write_all(&frame(&hello.encode()))?;
    register_connection(shared, peer, stream)
}

/// Background reconnect attempts for a dialed peer; declares it dead
/// when the policy is exhausted.
fn reconnect_loop(shared: &Arc<Shared>, cfg: &NodeConfig, peer: usize) {
    for attempt in 0..cfg.reconnect.attempts {
        thread::sleep(cfg.reconnect.backoff(attempt));
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        if dial_handshake(shared, cfg, peer, Duration::from_secs(2)).is_ok() {
            let mut inner = shared.inner.lock().expect("net lock");
            inner.stats.reconnects += 1;
            inner.peers[peer].reconnecting = false;
            drop(inner);
            shared.cv.notify_all();
            return;
        }
    }
    let mut inner = shared.inner.lock().expect("net lock");
    let p = &mut inner.peers[peer];
    p.reconnecting = false;
    if !p.dead && !p.connected {
        p.dead = true;
        inner.stats.dead_peers += 1;
    }
    drop(inner);
    shared.cv.notify_all();
}

/// Runs the protocol over real sockets until global termination.
///
/// `listener` must already be bound (bind first, share the address,
/// then start the cluster — this is what makes port assignment
/// race-free). `on_ready` fires once every link is up, right before
/// virtual time starts.
///
/// # Errors
///
/// [`NetError`] on configuration, handshake, wall-clock, or event-cap
/// failures. Peer crashes are *not* errors: the node keeps going and
/// lets the protocol degrade.
///
/// # Panics
///
/// Panics if an internal lock is poisoned (a helper thread panicked).
pub fn run_node<P, R>(
    cfg: &NodeConfig,
    listener: TcpListener,
    proto: P,
    on_ready: R,
) -> Result<NodeReport<P::Output>, NetError>
where
    P: AsyncProtocol,
    P::Msg: WireCodec,
    R: FnOnce(),
{
    cfg.validate()?;
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            peers: (0..cfg.n).map(|_| PeerSt::new()).collect(),
            stats: NetStats::default(),
        }),
        cv: Condvar::new(),
        shutdown: AtomicBool::new(false),
        streams: Mutex::new(Vec::new()),
        writer_handles: Mutex::new(Vec::new()),
        aux_handles: Mutex::new(Vec::new()),
        me: cfg.me,
        n: cfg.n,
        secret: cfg.secret,
        min_delay: cfg.min_delay,
    });

    // Lifetime acceptor: serves both the initial handshakes from higher
    // peers and any re-dials after a drop.
    listener.set_nonblocking(true)?;
    let acceptor = {
        let shared = Arc::clone(&shared);
        let cfg = cfg.clone();
        thread::spawn(move || loop {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    // Handshake concurrently: a serial acceptor would
                    // block peer k's Hello behind peer j's, long enough
                    // for k to give up a connection we then register —
                    // and the first frames written into it are lost.
                    stream.set_nonblocking(false).ok();
                    let sh = Arc::clone(&shared);
                    let hcfg = cfg.clone();
                    let h = thread::spawn(move || {
                        let _ = accept_handshake(&sh, &hcfg, stream);
                    });
                    shared.aux_handles.lock().expect("net lock").push(h);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(3))
                }
                Err(_) => thread::sleep(Duration::from_millis(3)),
            }
        })
    };

    let result = drive_node(cfg, &shared, proto, on_ready);

    // Teardown: close writer channels and join the writers first so
    // queued frames (the final Done) are flushed, then tear down the
    // sockets to unblock readers, then join everything else.
    shared.shutdown.store(true, Ordering::SeqCst);
    {
        let mut inner = shared.inner.lock().expect("net lock");
        for p in &mut inner.peers {
            p.tx = None;
        }
    }
    shared.cv.notify_all();
    let writers = std::mem::take(&mut *shared.writer_handles.lock().expect("net lock"));
    for h in writers {
        let _ = h.join();
    }
    for s in shared.streams.lock().expect("net lock").iter() {
        let _ = s.shutdown(Shutdown::Both);
    }
    let aux = std::mem::take(&mut *shared.aux_handles.lock().expect("net lock"));
    for h in aux {
        let _ = h.join();
    }
    let _ = acceptor.join();
    result
}

/// The virtual-time main loop (see the module docs for the invariants).
#[allow(clippy::too_many_lines)]
fn drive_node<P, R>(
    cfg: &NodeConfig,
    shared: &Arc<Shared>,
    mut proto: P,
    on_ready: R,
) -> Result<NodeReport<P::Output>, NetError>
where
    P: AsyncProtocol,
    P::Msg: WireCodec,
    R: FnOnce(),
{
    let me = cfg.me;
    let n = cfg.n;
    let start = Instant::now();

    // Initial link bring-up: dial lower peers (retrying while the
    // cluster boots), wait for higher peers to dial us.
    for peer in 0..me {
        loop {
            match dial_handshake(shared, cfg, peer, cfg.handshake_timeout) {
                Ok(()) => break,
                Err(_) if start.elapsed() < cfg.handshake_timeout => {
                    thread::sleep(Duration::from_millis(50));
                }
                Err(e) => return Err(e),
            }
        }
    }
    {
        let mut inner = shared.inner.lock().expect("net lock");
        loop {
            let up = (0..n)
                .filter(|&j| j != me)
                .filter(|&j| inner.peers[j].connected)
                .count();
            if up == n - 1 {
                break;
            }
            if start.elapsed() >= cfg.handshake_timeout {
                return Err(NetError::Handshake(format!("only {up}/{} links up", n - 1)));
            }
            let (guard, _) = shared
                .cv
                .wait_timeout(inner, Duration::from_millis(20))
                .expect("net lock");
            inner = guard;
        }
    }
    on_ready();

    let mut pending: BinaryHeap<Reverse<Pend<P::Msg>>> = BinaryHeap::new();
    let mut recorder = AsyncRecorder::new(n, cfg.t, &cfg.label);
    let mut vnow = 0.0f64;
    let mut timer_seq = 0u64;
    // Per-destination Data ordinals for my outgoing links (incl. self).
    let mut out_lseq = vec![0u64; n];
    let mut done_sent = false;
    let mut events_processed = 0u64;
    let mut retransmissions = 0u64;
    // Schedule debugging: dump every processed event key to stderr.
    let debug_events = std::env::var_os("TREEAA_NET_DEBUG").is_some();

    // A reusable closure would borrow too much; plain fn with the lot.
    #[allow(clippy::too_many_arguments)]
    fn apply_parts<M: WireCodec + sim_net::Payload>(
        ctx: AsyncCtx<M>,
        vnow: f64,
        cfg: &NodeConfig,
        shared: &Shared,
        pending: &mut BinaryHeap<Reverse<Pend<M>>>,
        recorder: &mut AsyncRecorder,
        out_lseq: &mut [u64],
        timer_seq: &mut u64,
        retransmissions: &mut u64,
    ) {
        let me = cfg.me;
        let parts = ctx.into_parts();
        for event in parts.events {
            recorder.record_proto(vnow, me, event);
        }
        if parts.retransmits > 0 && std::env::var_os("TREEAA_NET_DEBUG").is_some() {
            eprintln!("RETX node={me} t={vnow:.17} count={}", parts.retransmits);
        }
        *retransmissions += parts.retransmits as u64;
        for (delay, token) in parts.timers {
            let ts = *timer_seq;
            *timer_seq += 1;
            pending.push(Reverse(Pend {
                key: VKey {
                    time: vnow + delay,
                    class: 1,
                    a: me as u64,
                    b: ts,
                    c: token,
                },
                what: LocalEv::Timer(token),
            }));
        }
        for env in parts.outbox {
            let to = env.to.index();
            let lseq = out_lseq[to];
            out_lseq[to] += 1;
            let delay = link_delay(cfg.seed, me, to, lseq, cfg.min_delay);
            let vdeliver = vnow + delay;
            if to == me {
                pending.push(Reverse(Pend {
                    key: VKey {
                        time: vdeliver,
                        class: 0,
                        a: me as u64,
                        b: me as u64,
                        c: lseq,
                    },
                    what: LocalEv::Deliver(env),
                }));
                continue;
            }
            let body = env.payload.to_bytes();
            let mut inner = shared.inner.lock().expect("net lock");
            let p = &mut inner.peers[to];
            let wire_seq = p.out_wire_seq;
            p.out_wire_seq += 1;
            let tx = p.tx.clone();
            match tx {
                Some(tx) => {
                    let msg = WrapperMsg {
                        kind: FrameKind::Data,
                        from: me as u32,
                        to: to as u32,
                        wire_seq,
                        lseq,
                        vsend: vnow,
                        vdeliver,
                        body,
                        mac: 0,
                    }
                    .signed(pair_key(cfg.secret, me, to));
                    let bytes = frame(&msg.encode());
                    inner.stats.frames_sent += 1;
                    inner.stats.bytes_sent += bytes.len() as u64;
                    drop(inner);
                    // A send error is surfaced by the writer thread.
                    let _ = tx.send(bytes);
                }
                None => {
                    // Link down: the frame is lost; Reliable retransmits.
                    inner.stats.send_drops += 1;
                }
            }
        }
    }

    // Control-frame sender (Null / Done).
    let send_ctl = |kind: FrameKind, to: usize, vsend: f64, inner: &mut Inner| {
        let p = &mut inner.peers[to];
        let wire_seq = p.out_wire_seq;
        p.out_wire_seq += 1;
        if let Some(tx) = p.tx.clone() {
            let msg = WrapperMsg {
                kind,
                from: me as u32,
                to: to as u32,
                wire_seq,
                lseq: 0,
                vsend,
                vdeliver: vsend,
                body: Vec::new(),
                mac: 0,
            }
            .signed(pair_key(cfg.secret, me, to));
            let bytes = frame(&msg.encode());
            if kind == FrameKind::Null {
                inner.stats.nulls_sent += 1;
            } else {
                inner.stats.frames_sent += 1;
            }
            inner.stats.bytes_sent += bytes.len() as u64;
            let _ = tx.send(bytes);
        }
    };

    // Virtual time starts: the protocol's one-shot start activation.
    let mut ctx = AsyncCtx::external(PartyId(me), n, 0.0, true);
    proto.on_start(&mut ctx);
    apply_parts(
        ctx,
        0.0,
        cfg,
        shared,
        &mut pending,
        &mut recorder,
        &mut out_lseq,
        &mut timer_seq,
        &mut retransmissions,
    );

    loop {
        if start.elapsed() > cfg.wall_timeout {
            return Err(NetError::WallTimeout {
                elapsed_ms: start.elapsed().as_millis() as u64,
            });
        }

        // Drain shared state and snapshot the bound in ONE critical
        // section. The two must be atomic: a frame arriving between a
        // drain and a later bound computation would already have raised
        // its peer's watermark while still sitting undrained in the
        // inbox, letting the bound overtake its delivery time — and an
        // unrelated pending event could then be processed out of order.
        // With the atomic snapshot, every frame received after it has
        // `vdeliver` strictly above the snapshot watermark (FIFO links,
        // monotone sender clocks, delays > min_delay), hence above the
        // bound used for this processing pass.
        let mut frames = Vec::new();
        let mut drops = Vec::new();
        let (bound, all_peers_finished) = {
            let mut inner = shared.inner.lock().expect("net lock");
            for j in (0..n).filter(|&j| j != me) {
                let p = &mut inner.peers[j];
                while let Some(m) = p.inbox.pop_front() {
                    frames.push(m);
                }
                if p.pending_drops > 0 {
                    drops.push((j, p.pending_drops));
                    p.pending_drops = 0;
                }
            }
            let mut bound = f64::INFINITY;
            let mut finished = true;
            for j in (0..n).filter(|&j| j != me) {
                let p = &inner.peers[j];
                if !p.dead {
                    bound = bound.min(p.watermark);
                }
                finished &= p.done || p.dead;
            }
            (bound, finished)
        };
        let mut activity = !frames.is_empty() || !drops.is_empty();
        for (j, k) in drops {
            for _ in 0..k {
                recorder.record_drop(vnow, j, me);
            }
        }
        for m in frames {
            match P::Msg::from_bytes(&m.body) {
                Ok(payload) => pending.push(Reverse(Pend {
                    key: VKey {
                        time: m.vdeliver,
                        class: 0,
                        a: u64::from(m.from),
                        b: me as u64,
                        c: m.lseq,
                    },
                    what: LocalEv::Deliver(Envelope {
                        from: PartyId(m.from as usize),
                        to: PartyId(me),
                        payload,
                    }),
                })),
                Err(_) => {
                    recorder.record_drop(vnow, m.from as usize, me);
                    shared
                        .inner
                        .lock()
                        .expect("net lock")
                        .stats
                        .rejected_malformed += 1;
                }
            }
        }

        // Process the safe prefix in the global VKey order.
        while pending.peek().is_some_and(|Reverse(p)| p.key.time <= bound) {
            let Reverse(ev) = pending.pop().expect("peeked");
            vnow = ev.key.time;
            events_processed += 1;
            if events_processed > cfg.max_events {
                return Err(NetError::Stalled {
                    events: events_processed,
                });
            }
            if debug_events {
                eprintln!(
                    "EV node={me} t={:.17} class={} a={} b={} c={}",
                    ev.key.time, ev.key.class, ev.key.a, ev.key.b, ev.key.c
                );
            }
            let mut ctx = AsyncCtx::external(PartyId(me), n, vnow, true);
            match ev.what {
                LocalEv::Deliver(env) => proto.on_message(env, &mut ctx),
                LocalEv::Timer(token) => proto.on_timer(token, &mut ctx),
            }
            apply_parts(
                ctx,
                vnow,
                cfg,
                shared,
                &mut pending,
                &mut recorder,
                &mut out_lseq,
                &mut timer_seq,
                &mut retransmissions,
            );
            activity = true;
        }

        // Output reached: tell everyone, once.
        if !done_sent && proto.output().is_some() {
            let mut inner = shared.inner.lock().expect("net lock");
            for j in (0..n).filter(|&j| j != me) {
                send_ctl(FrameKind::Done, j, vnow, &mut inner);
            }
            done_sent = true;
            activity = true;
        }

        if done_sent && all_peers_finished {
            break;
        }

        // Promise the new bound: any future Data from us is strictly
        // beyond `bound + min_delay` (activations happen after `bound`,
        // delays strictly exceed `min_delay`).
        if bound.is_finite() {
            let promise = bound + cfg.min_delay;
            let mut inner = shared.inner.lock().expect("net lock");
            for j in (0..n).filter(|&j| j != me) {
                let wants = {
                    let p = &inner.peers[j];
                    p.connected && !p.dead && promise > p.last_promised
                };
                if wants {
                    send_ctl(FrameKind::Null, j, promise, &mut inner);
                    inner.peers[j].last_promised = promise;
                }
            }
        }

        // Liveness bookkeeping: promote silent links to dead, kick
        // reconnects for peers we dial.
        {
            let mut inner = shared.inner.lock().expect("net lock");
            for j in (0..n).filter(|&j| j != me) {
                let p = &mut inner.peers[j];
                if p.connected || p.dead {
                    continue;
                }
                let down_for = p.down_since.map_or(Duration::ZERO, |t| t.elapsed());
                if down_for >= Duration::from_millis(cfg.reconnect.dead_after_ms) {
                    p.dead = true;
                    p.reconnecting = false;
                    inner.stats.dead_peers += 1;
                } else if j < me && !p.reconnecting {
                    p.reconnecting = true;
                    let sh = Arc::clone(shared);
                    let th_cfg = cfg.clone();
                    let handle = thread::spawn(move || reconnect_loop(&sh, &th_cfg, j));
                    shared.aux_handles.lock().expect("net lock").push(handle);
                }
            }
        }

        if !activity {
            let inner = shared.inner.lock().expect("net lock");
            let _ = shared
                .cv
                .wait_timeout(inner, Duration::from_millis(3))
                .expect("net lock");
        }
    }

    let mut stats = {
        let inner = shared.inner.lock().expect("net lock");
        inner.stats
    };
    stats.retransmissions = retransmissions;
    Ok(NodeReport {
        output: proto.output(),
        trace: recorder.into_trace(),
        stats,
        vtime: vnow,
    })
}
