//! End-to-end differential gate: n = 4 real TCP nodes on loopback must
//! replay the in-process reference schedule bit for bit, across many
//! seeds, and across reruns.

use net::{differential_gate, run_local_cluster, GateCase};
use tree_model::VertexId;

const SPIDER9: &str =
    "vertex 0\nvertex 1\nvertex 2\nvertex 3\nvertex 4\nvertex 5\nvertex 6\nvertex 7\nvertex 8\n\
edge 0 1\nedge 1 2\nedge 2 3\nedge 2 4\nedge 4 5\nedge 0 6\nedge 6 7\nedge 7 8\n";

fn case_for(seed: u64) -> GateCase {
    // Vary the inputs with the seed so the 20 cases exercise different
    // hull geometries, not just different delay schedules.
    let picks = [
        (seed % 9) as usize,
        (seed * 3 + 1) as usize % 9,
        (seed * 5 + 4) as usize % 9,
        (seed * 7 + 2) as usize % 9,
    ];
    GateCase::from_text(SPIDER9, &picks, 1, seed).expect("valid case")
}

fn check_agreement(case: &GateCase, outcomes: &[sim_net::Outcome<VertexId>]) {
    let outputs: Vec<VertexId> = outcomes
        .iter()
        .map(|o| {
            assert!(!o.is_degraded(), "clean run must not degrade");
            *o.value()
        })
        .collect();
    tree_aa::check_tree_aa(&case.tree, &case.inputs, &outputs)
        .expect("outputs must 1-agree inside the input hull");
}

/// The headline acceptance criterion: ≥ 20 seeded cases where the
/// networked run reconciles with the reference event-for-event.
#[test]
fn twenty_seeded_cases_pass_the_differential_gate() {
    for seed in 0..20u64 {
        let case = case_for(seed);
        let reference = case.reference_run().expect("reference run");
        let cluster = run_local_cluster(&case, 0xc0ff_ee00 + seed).expect("cluster run");

        check_agreement(&case, &cluster.outcomes);
        assert_eq!(
            cluster.outcomes, reference.outcomes,
            "seed {seed}: networked outcomes diverge from the reference"
        );
        let reconciled = differential_gate(&reference.trace, &cluster.merged_trace)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(reconciled > 0, "seed {seed}: gate reconciled no events");

        // Clean loopback runs must need none of the failure machinery.
        for (i, s) in cluster.stats.iter().enumerate() {
            assert_eq!(s.rejected_mac, 0, "seed {seed} node {i}");
            assert_eq!(s.rejected_replay, 0, "seed {seed} node {i}");
            assert_eq!(s.rejected_malformed, 0, "seed {seed} node {i}");
            assert_eq!(s.dead_peers, 0, "seed {seed} node {i}");
            assert_eq!(s.retransmissions, 0, "seed {seed} node {i}");
        }
    }
}

/// Rerunning the same seed over fresh sockets reproduces the merged
/// trace bit for bit (canonical string equality, not just event
/// reconciliation).
#[test]
fn networked_reruns_are_bit_identical() {
    for seed in [3u64, 11] {
        let case = case_for(seed);
        let a = run_local_cluster(&case, 0xaaaa).expect("first run");
        let b = run_local_cluster(&case, 0xbbbb).expect("second run");
        assert_eq!(
            a.merged_trace.to_canonical_string(),
            b.merged_trace.to_canonical_string(),
            "seed {seed}: reruns diverge"
        );
        assert_eq!(a.outcomes, b.outcomes);
    }
}
