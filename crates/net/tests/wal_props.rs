//! WAL framing properties, mirroring the frame-codec suite: arbitrary
//! records must round-trip through [`WalCursor`] under arbitrary byte
//! chunking, a torn final record must be truncated (never fatal), a
//! checksum flip must surface as the typed [`WalError::Checksum`], and
//! garbage input must never panic or over-consume. Records are expanded
//! deterministically from seeds (the vendored proptest has no
//! collection strategies), so every failure reproduces from integers.

use net::wal::{WalEvent, WalMark, WalRemote};
use net::{WalCursor, WalError, WalHeader, WalRecord};
use proptest::prelude::*;

/// splitmix64 — deterministic seed-stream expansion.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A record of any variant, derived from the seed stream.
fn record(s: &mut u64) -> WalRecord {
    match next(s) % 4 {
        0 => WalRecord::Header(WalHeader {
            config_fp: next(s),
            me: (next(s) % 64) as usize,
            n: (next(s) % 64) as usize,
            t: (next(s) % 8) as usize,
            seed: next(s),
            min_delay_bits: next(s),
            wire_version: (next(s) & 0xffff) as u32,
            label: format!("wal-prop-{:x}", next(s) & 0xffff),
        }),
        1 => WalRecord::Reserve {
            peer: (next(s) % 64) as usize,
            upto: next(s),
        },
        2 => {
            let remote = if next(s).is_multiple_of(2) {
                let len = (next(s) % 512) as usize;
                Some(WalRemote {
                    from: (next(s) % 64) as usize,
                    lseq: next(s),
                    vsend_bits: next(s),
                    body: (0..len).map(|_| (next(s) & 0xff) as u8).collect(),
                })
            } else {
                None
            };
            WalRecord::Event(WalEvent {
                time_bits: next(s),
                class: (next(s) % 2) as u8,
                a: next(s),
                b: next(s),
                c: next(s),
                remote,
            })
        }
        _ => WalRecord::Mark(WalMark {
            time_bits: next(s),
            events: next(s),
            probe: next(s),
        }),
    }
}

/// Expands `seed` into 1..=8 records plus their concatenated encoding
/// and the cumulative byte offset after each record.
fn log_from(seed: u64) -> (Vec<WalRecord>, Vec<u8>, Vec<usize>) {
    let mut s = seed;
    let count = 1 + (next(&mut s) as usize) % 8;
    let records: Vec<WalRecord> = (0..count).map(|_| record(&mut s)).collect();
    let mut wire = Vec::new();
    let mut boundaries = Vec::new();
    for r in &records {
        wire.extend_from_slice(&r.encode());
        boundaries.push(wire.len());
    }
    (records, wire, boundaries)
}

/// Feeds `bytes` into `cursor` in pseudo-random chunks.
fn push_chunked(cursor: &mut WalCursor, bytes: &[u8], seed: u64) {
    let mut s = seed;
    let mut pos = 0;
    while pos < bytes.len() {
        let k = 1 + (next(&mut s) as usize) % 97;
        let end = (pos + k).min(bytes.len());
        cursor.push(&bytes[pos..end]);
        pos = end;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any record sequence survives any chunking bit-for-bit, in order,
    /// and the cursor accounts for every byte.
    #[test]
    fn roundtrip_any_records_any_chunking(seed in any::<u64>(), chunk_seed in any::<u64>()) {
        let (records, wire, _) = log_from(seed);
        let mut cursor = WalCursor::new();
        push_chunked(&mut cursor, &wire, chunk_seed);
        for expect in &records {
            let got = cursor.next_record().expect("valid log").expect("complete record");
            prop_assert_eq!(&got, expect);
        }
        prop_assert_eq!(cursor.next_record().expect("clean tail"), None);
        prop_assert_eq!(cursor.consumed(), wire.len() as u64);
        prop_assert_eq!(cursor.pending(), 0);
    }

    /// Cutting the log mid-record (a crash mid-append) loses only the
    /// torn record: every complete record before the cut decodes, the
    /// cursor reports no error, and `consumed()` lands exactly on the
    /// last complete record boundary — the truncation point recovery
    /// uses.
    #[test]
    fn a_torn_tail_is_truncated_not_fatal(seed in any::<u64>(), cut_pick in any::<u64>()) {
        let (records, wire, boundaries) = log_from(seed);
        // Cut strictly inside some record: offset in [start+1, end).
        let idx = (cut_pick as usize) % records.len();
        let start = if idx == 0 { 0 } else { boundaries[idx - 1] };
        let span = boundaries[idx] - start;
        let cut = start + 1 + (cut_pick >> 32) as usize % (span - 1).max(1);

        let mut cursor = WalCursor::new();
        cursor.push(&wire[..cut]);
        let mut got = Vec::new();
        while let Some(r) = cursor.next_record().expect("torn tail is not an error") {
            got.push(r);
        }
        prop_assert_eq!(&got[..], &records[..idx]);
        prop_assert_eq!(cursor.consumed(), start as u64);
        prop_assert_eq!(cursor.pending(), cut - start);
    }

    /// Flipping any bit of a record's payload or checksum yields the
    /// typed [`WalError::Checksum`] at that record's offset; every
    /// record before it still decodes, and the cursor stays poisoned.
    #[test]
    fn checksum_corruption_is_a_typed_error(seed in any::<u64>(), flip_pick in any::<u64>()) {
        let (records, mut wire, boundaries) = log_from(seed);
        // Flip one bit past the 4-byte length prefix of some record
        // (corrupting the prefix itself is the oversize/garbage case).
        let idx = (flip_pick as usize) % records.len();
        let start = if idx == 0 { 0 } else { boundaries[idx - 1] };
        let span = boundaries[idx] - start - 4;
        let at = start + 4 + (flip_pick >> 24) as usize % span;
        wire[at] ^= 1 << ((flip_pick >> 56) % 8);

        let mut cursor = WalCursor::new();
        cursor.push(&wire);
        for expect in &records[..idx] {
            let got = cursor.next_record().expect("prefix is intact").expect("complete");
            prop_assert_eq!(&got, expect);
        }
        let err = cursor.next_record().expect_err("corrupt record");
        prop_assert_eq!(err, WalError::Checksum { offset: start as u64 });
        // Poisoned: the same typed error, forever.
        let again = cursor.next_record().expect_err("cursor stays poisoned");
        prop_assert_eq!(again, WalError::Checksum { offset: start as u64 });
    }

    /// Arbitrary garbage never panics and never consumes bytes it did
    /// not verify: the cursor either waits for more input or reports a
    /// typed error.
    #[test]
    fn garbage_never_panics_or_over_consumes(seed in any::<u64>(), len in 0usize..4096) {
        let mut s = seed;
        let garbage: Vec<u8> = (0..len).map(|_| (next(&mut s) & 0xff) as u8).collect();
        let mut cursor = WalCursor::new();
        cursor.push(&garbage);
        // Draining Ok(Some(_)) records is astronomically unlikely on
        // garbage, but legal; stop on clean-tail or typed error.
        while let Ok(Some(_)) = cursor.next_record() {}
        prop_assert!(cursor.consumed() <= garbage.len() as u64);
    }
}
