//! Chaos acceptance: ≥ 20 seeded fault plans (resets, stalls, single-bit
//! corruption, partitions, transient blackouts) injected below the frame
//! layer by the [`net::chaos`] relay must never cost correctness — every
//! node of a 4-party cluster still terminates with 1-agreeing outputs
//! inside the honest input hull, with every corrupted byte rejected at
//! the MAC/codec layer rather than delivered.
//!
//! Unlike the clean-loopback gate, these runs do *not* assert the
//! differential gate: chaos-induced frame loss shifts the retransmitting
//! layer's schedule, which is exactly the freedom the protocol's
//! asynchronous model grants it.

use net::node::ReconnectPolicy;
use net::{run_local_cluster_opts, seeded_plan, ClusterChaos, ClusterOpts, GateCase};
use std::time::Duration;
use tree_model::VertexId;

const SPIDER9: &str =
    "vertex 0\nvertex 1\nvertex 2\nvertex 3\nvertex 4\nvertex 5\nvertex 6\nvertex 7\nvertex 8\n\
edge 0 1\nedge 1 2\nedge 2 3\nedge 2 4\nedge 4 5\nedge 0 6\nedge 6 7\nedge 7 8\n";

fn case_for(seed: u64) -> GateCase {
    let picks = [
        (seed % 9) as usize,
        (seed * 3 + 1) as usize % 9,
        (seed * 5 + 4) as usize % 9,
        (seed * 7 + 2) as usize % 9,
    ];
    GateCase::from_text(SPIDER9, &picks, 1, seed).expect("valid case")
}

/// [`ReconnectPolicy::patient`] with the dead-peer deadline pushed out
/// further: on a loaded CI host, thread starvation can keep a link down
/// long past its real outage, and a spuriously dead peer turns an
/// eventually-connected plan into a degraded run.
fn tolerant() -> ReconnectPolicy {
    let mut p = ReconnectPolicy::patient();
    p.attempts = 200;
    p.dead_after_ms = 60_000;
    p
}

fn run_seed(seed: u64) {
    let case = case_for(seed);
    let mut opts = ClusterOpts::new(0xc4a0_5000 + seed);
    opts.reconnect = Some(tolerant());
    opts.wall_timeout = Some(Duration::from_secs(120));
    opts.chaos = Some(ClusterChaos {
        plan: seeded_plan(seed, case.n()),
        round_ms: 40,
    });
    let report = run_local_cluster_opts(&case, &opts)
        .unwrap_or_else(|e| panic!("seed {seed}: chaos run failed: {e}"));

    // Correctness under chaos: non-degraded, 1-agreeing, in-hull.
    let outputs: Vec<VertexId> = report
        .outcomes
        .iter()
        .map(|o| {
            assert!(
                !o.is_degraded(),
                "seed {seed}: transient chaos must not degrade: {o:?}"
            );
            *o.value()
        })
        .collect();
    tree_aa::check_tree_aa(&case.tree, &case.inputs, &outputs)
        .unwrap_or_else(|v| panic!("seed {seed}: {v}"));

    // Chaos is caught, never delivered: a corrupted frame surfaces as a
    // MAC/codec rejection (or a connection cut), never as an accepted
    // bad frame — acceptance would show up as an outcome failure above.
    // Dead peers are NOT asserted zero: under heavy host load a
    // wall-clock liveness deadline can fire spuriously, and the run is
    // still required to terminate correctly when it does.
    let _ = &report.stats;
}

/// The headline acceptance criterion: 20 seeded eventually-connected
/// plans, all terminating correctly. Ignored by default (several
/// minutes of wall clock); the CI chaos-smoke job runs it explicitly
/// with `-- --ignored`.
#[test]
#[ignore = "chaos acceptance: minutes of wall clock, run by the CI chaos-smoke job"]
fn twenty_seeded_chaos_plans_terminate_in_hull() {
    let mut threads = Vec::new();
    for seed in 0..20u64 {
        threads.push(std::thread::spawn(move || run_seed(seed)));
        // Bound concurrency: each run is 4 nodes + 4 proxies of threads,
        // and over-subscribing the host starves the wall-clock liveness
        // machinery inside the runs.
        if threads.len() == 2 {
            for t in threads.drain(..) {
                t.join().expect("chaos run panicked");
            }
        }
    }
    for t in threads {
        t.join().expect("chaos run panicked");
    }
}

/// At least one of the standard seeds actually exercises the fault
/// machinery end to end — the relay draws real blood (rejections or
/// forced reconnects), and the cluster shrugs it off.
#[test]
fn chaos_actually_injects_faults_somewhere() {
    let mut rejected = 0u64;
    let mut reconnects = 0u64;
    for seed in [2u64, 5, 11] {
        let case = case_for(seed);
        let mut opts = ClusterOpts::new(0xfa57 + seed);
        opts.reconnect = Some(tolerant());
        opts.wall_timeout = Some(Duration::from_secs(120));
        opts.chaos = Some(ClusterChaos {
            plan: seeded_plan(seed, case.n()),
            round_ms: 40,
        });
        let report = run_local_cluster_opts(&case, &opts)
            .unwrap_or_else(|e| panic!("seed {seed}: chaos run failed: {e}"));
        for o in &report.outcomes {
            assert!(!o.is_degraded(), "seed {seed}");
        }
        rejected += report
            .stats
            .iter()
            .map(|x| x.rejected_mac + x.rejected_malformed)
            .sum::<u64>();
        reconnects += report.stats.iter().map(|x| x.reconnects).sum::<u64>();
    }
    assert!(
        rejected + reconnects > 0,
        "three chaos plans injected no observable fault at all"
    );
}
