//! Adversarial transport tests: a real `run_node` instance is attacked
//! over a live TCP connection by a raw-socket peer that speaks the wire
//! format but misbehaves — tampered payloads, wrong-key MACs, replayed
//! envelopes. Every attack must be rejected, surfaced as a traced
//! `fault_drop`, and never reach the protocol.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::thread;
use std::time::Duration;

use aa_trace::EventKind;
use net::{frame, pair_key, FrameKind, HelloBody, NodeConfig, WireCodec, WrapperMsg, WIRE_VERSION};
use sim_net::Envelope;

const SECRET: u64 = 0x5eed_5eed_5eed_5eed;
const CONFIG_FP: u64 = 0xfeed_beef_cafe_f00d;

/// A minimal protocol: records every delivered value, outputs the first.
struct Sink {
    got: Vec<u64>,
}

impl async_net::AsyncProtocol for Sink {
    type Msg = u64;
    type Output = Vec<u64>;

    fn on_start(&mut self, _ctx: &mut async_net::AsyncCtx<u64>) {}

    fn on_message(&mut self, env: Envelope<u64>, _ctx: &mut async_net::AsyncCtx<u64>) {
        self.got.push(env.payload);
    }

    fn output(&self) -> Option<Vec<u64>> {
        if self.got.is_empty() {
            None
        } else {
            Some(self.got.clone())
        }
    }
}

/// The raw adversary peer: party 1 of 2, driving node 0 by hand.
struct RawPeer {
    stream: TcpStream,
    wire_seq: u64,
}

impl RawPeer {
    /// Dials `addr` and completes the mutual Hello exchange.
    fn connect(addr: std::net::SocketAddr) -> Self {
        let mut peer = RawPeer {
            stream: TcpStream::connect(addr).expect("dial node"),
            wire_seq: 0,
        };
        peer.stream.set_nodelay(true).ok();
        peer.stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let hello = HelloBody {
            config_fp: CONFIG_FP,
            version: WIRE_VERSION,
            have_prefix: 0,
            have_extras: Vec::new(),
        };
        let msg = peer.envelope(FrameKind::Hello, 0, 0.0, 0.0, hello.to_bytes());
        peer.send_raw(&msg.encode());
        let resp = peer.read_frame();
        let resp = WrapperMsg::decode(&resp).expect("node hello");
        assert_eq!(resp.kind, FrameKind::Hello);
        assert!(
            resp.verify(pair_key(SECRET, 0, 1)),
            "node hello must be MACed"
        );
        peer
    }

    /// A fresh, correctly signed envelope from party 1 to party 0.
    fn envelope(
        &mut self,
        kind: FrameKind,
        lseq: u64,
        vsend: f64,
        vdeliver: f64,
        body: Vec<u8>,
    ) -> WrapperMsg {
        let wire_seq = self.wire_seq;
        self.wire_seq += 1;
        WrapperMsg {
            kind,
            from: 1,
            to: 0,
            wire_seq,
            lseq,
            vsend,
            vdeliver,
            body,
            mac: 0,
        }
        .signed(pair_key(SECRET, 1, 0))
    }

    fn send_raw(&mut self, payload: &[u8]) {
        self.stream.write_all(&frame(payload)).expect("send frame");
    }

    fn read_frame(&mut self) -> Vec<u8> {
        let mut prefix = [0u8; 4];
        self.stream.read_exact(&mut prefix).expect("frame prefix");
        let len = u32::from_be_bytes(prefix) as usize;
        let mut payload = vec![0u8; len];
        self.stream.read_exact(&mut payload).expect("frame body");
        payload
    }
}

#[test]
fn tampered_wrong_key_and_replayed_frames_are_rejected_never_delivered() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    let cfg = NodeConfig::new(0, 2, 0, vec![addr, addr], SECRET, CONFIG_FP, 7);

    let node =
        thread::spawn(move || net::run_node(&cfg, listener, Sink { got: Vec::new() }, || {}));

    let mut peer = RawPeer::connect(addr);

    // 1. A valid message: must be delivered.
    let good = peer.envelope(FrameKind::Data, 0, 1.0, 1.2, 42u64.to_bytes());
    let good_bytes = good.encode();
    peer.send_raw(&good_bytes);

    // 2. Tampered payload: signed, then one body byte flipped.
    let mut tampered = peer
        .envelope(FrameKind::Data, 1, 1.1, 1.3, 1337u64.to_bytes())
        .encode();
    let last = tampered.len() - 1;
    tampered[last] ^= 0x01;
    peer.send_raw(&tampered);

    // 3. Wrong pairwise key (valid SipHash, wrong secret).
    let wrong_key = WrapperMsg {
        kind: FrameKind::Data,
        from: 1,
        to: 0,
        wire_seq: peer.wire_seq,
        lseq: 2,
        vsend: 1.2,
        vdeliver: 1.4,
        body: 99u64.to_bytes(),
        mac: 0,
    }
    .signed(pair_key(SECRET ^ 1, 1, 0));
    peer.wire_seq += 1;
    peer.send_raw(&wrong_key.encode());

    // 4. Replay of the valid envelope: identical bytes, stale wire_seq.
    peer.send_raw(&good_bytes);

    // Wait for the node's Done (it outputs on the first delivery), then
    // answer with ours so it can terminate.
    loop {
        let f = peer.read_frame();
        let msg = WrapperMsg::decode(&f).expect("node frame");
        if msg.kind == FrameKind::Done {
            break;
        }
    }
    let done = peer.envelope(FrameKind::Done, 0, 50.0, 50.0, Vec::new());
    peer.send_raw(&done.encode());
    // A v2 peer also acknowledges the node's Done; without the ack (or a
    // hang-up) the node keeps re-announcing instead of terminating.
    let ack = peer.envelope(FrameKind::DoneAck, 0, 50.0, 50.0, Vec::new());
    peer.send_raw(&ack.encode());

    let report = node.join().expect("node thread").expect("node run");

    // Only the valid value was ever delivered — exactly once.
    assert_eq!(report.output, Some(vec![42]));

    // Every attack was counted under the right reason.
    assert_eq!(report.stats.rejected_mac, 2, "tampered + wrong-key");
    assert_eq!(report.stats.rejected_replay, 1, "replayed envelope");
    assert_eq!(report.stats.rejected_malformed, 0);

    // And surfaced as traced fault_drop events, one per attack.
    let drops = report
        .trace
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::FaultDrop { from: 1, to: 0 }))
        .count();
    assert_eq!(drops, 3, "each rejected frame must be traced");
}

#[test]
fn mismatched_config_fingerprint_is_refused_at_handshake() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    let cfg = NodeConfig::new(0, 2, 0, vec![addr, addr], SECRET, CONFIG_FP, 7);

    let node = thread::spawn(move || {
        let mut cfg = cfg;
        // Keep the run short: this node will never hear a valid peer.
        cfg.handshake_timeout = Duration::from_millis(600);
        net::run_node(&cfg, listener, Sink { got: Vec::new() }, || {})
    });

    // A peer launched with a different execution fingerprint (other
    // tree, inputs, or seed) must be refused instead of diverging.
    let mut stream = TcpStream::connect(addr).expect("dial");
    stream
        .set_read_timeout(Some(Duration::from_secs(2)))
        .unwrap();
    let hello = HelloBody {
        config_fp: CONFIG_FP ^ 0xff,
        version: WIRE_VERSION,
        have_prefix: 0,
        have_extras: Vec::new(),
    };
    let msg = WrapperMsg {
        kind: FrameKind::Hello,
        from: 1,
        to: 0,
        wire_seq: 0,
        lseq: 0,
        vsend: 0.0,
        vdeliver: 0.0,
        body: hello.to_bytes(),
        mac: 0,
    }
    .signed(pair_key(SECRET, 1, 0));
    stream.write_all(&frame(&msg.encode())).unwrap();

    // The node must not answer with a Hello: the connection just dies.
    let mut buf = [0u8; 1];
    let got = stream.read(&mut buf);
    assert!(
        matches!(got, Ok(0)) || got.is_err(),
        "node answered a mismatched-fingerprint hello"
    );

    // The node itself errors out of bring-up (no valid peer ever came).
    let err = node
        .join()
        .expect("thread")
        .expect_err("must fail bring-up");
    assert!(matches!(err, net::NetError::Handshake(_)), "got {err}");
}
