//! End-to-end WAL recovery: a node whose log is truncated mid-run must
//! replay its prefix, re-handshake with fresh peers, rejoin the
//! protocol, and still reproduce the in-process reference schedule
//! event for event — crash recovery is invisible to the differential
//! gate.
//!
//! The in-process shape of the `treeaa` e2e (which SIGKILLs a real
//! process): run a durable cluster to completion, cut one node's WAL
//! back to a record boundary in the middle of its run (everything a
//! crashed process would have on disk), then re-run the cluster with
//! that node in recovery mode and everyone else starting fresh.

use std::fs;
use std::path::{Path, PathBuf};

use net::{
    differential_gate, proto_fingerprint, read_wal, run_local_cluster_opts, ClusterOpts, GateCase,
    ReconnectPolicy, WalCursor,
};

const SPIDER9: &str =
    "vertex 0\nvertex 1\nvertex 2\nvertex 3\nvertex 4\nvertex 5\nvertex 6\nvertex 7\nvertex 8\n\
edge 0 1\nedge 1 2\nedge 2 3\nedge 2 4\nedge 4 5\nedge 0 6\nedge 6 7\nedge 7 8\n";

/// A scratch directory that cleans up after itself.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir =
            std::env::temp_dir().join(format!("treeaa-recovery-{tag}-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("create scratch dir");
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// Truncates `node`'s WAL back to the record boundary closest to half
/// its records (never before the header), returning how many records
/// survive — the on-disk state of a process killed mid-run.
fn cut_wal_in_half(dir: &Path, node: usize) -> usize {
    let path = dir.join(format!("node{node}.wal"));
    let bytes = fs::read(&path).expect("read wal");
    let mut cursor = WalCursor::new();
    cursor.push(&bytes);
    let mut boundaries = Vec::new();
    while cursor.next_record().expect("valid wal").is_some() {
        boundaries.push(cursor.consumed());
    }
    assert!(
        boundaries.len() >= 4,
        "run too short to cut meaningfully ({} records)",
        boundaries.len()
    );
    let keep = boundaries.len() / 2;
    // Mimic a torn tail on top of the cut: recovery must shave the
    // partial record before replaying.
    let mut torn = bytes[..boundaries[keep - 1] as usize].to_vec();
    torn.extend_from_slice(&bytes[boundaries[keep - 1] as usize..][..3.min(bytes.len())]);
    fs::write(&path, torn).expect("truncate wal");
    keep
}

#[test]
fn a_truncated_node_recovers_and_the_gate_still_holds() {
    let case = GateCase::from_text(SPIDER9, &[0, 5, 8, 3], 1, 42).expect("valid case");
    let reference = case.reference_run().expect("reference run");
    let scratch = TempDir::new("gate");

    let mut opts = ClusterOpts::new(0xd00d_f00d);
    opts.wal_dir = Some(scratch.0.clone());
    opts.reconnect = Some(ReconnectPolicy::patient());

    // Run 1: a clean durable run, leaving complete WALs behind.
    let clean = run_local_cluster_opts(&case, &opts).expect("clean durable run");
    assert_eq!(clean.outcomes, reference.outcomes);
    differential_gate(&reference.trace, &clean.merged_trace).expect("clean gate");

    // Crash node 2 in the middle of its run: cut its WAL back to half
    // its records (plus a torn tail), as SIGKILL would leave it.
    let crashed = 2usize;
    let kept = cut_wal_in_half(&scratch.0, crashed);
    assert!(kept >= 2, "the cut must keep the header and some events");

    // Run 2: node 2 replays its prefix and rejoins; everyone else
    // starts fresh (their WALs are re-created).
    opts.recover = vec![crashed];
    let recovered = run_local_cluster_opts(&case, &opts).expect("recovered run");

    assert_eq!(
        recovered.outcomes, reference.outcomes,
        "recovery must not change any outcome"
    );
    let reconciled = differential_gate(&reference.trace, &recovered.merged_trace)
        .expect("the gate must hold through a recovery");
    assert!(reconciled > 0);

    // The proto fingerprint is blind to the crash: a recovered run
    // hashes identically to the unperturbed reference.
    assert_eq!(
        proto_fingerprint(&recovered.merged_trace).unwrap(),
        proto_fingerprint(&reference.trace).unwrap(),
    );

    // The recovered node deduplicated the frames it had already
    // consumed (fresh peers regenerate them); nothing anywhere tripped
    // a replay filter or MAC check.
    assert!(
        recovered.stats[crashed].dup_frames > 0,
        "node {crashed} should see duplicates of frames it replayed: {:?}",
        recovered.stats[crashed]
    );
    for (i, s) in recovered.stats.iter().enumerate() {
        assert_eq!(s.rejected_replay, 0, "node {i}: {s:?}");
        assert_eq!(s.rejected_mac, 0, "node {i}: {s:?}");
        assert_eq!(s.rejected_malformed, 0, "node {i}: {s:?}");
    }
}

/// Recovery is deterministic: two recoveries from the same truncated
/// WAL produce bit-identical merged traces.
#[test]
fn recovery_reruns_are_bit_identical() {
    let case = GateCase::from_text(SPIDER9, &[1, 6, 4, 8], 1, 77).expect("valid case");
    let scratch = TempDir::new("rerun");

    let mut opts = ClusterOpts::new(0xbeef);
    opts.wal_dir = Some(scratch.0.clone());
    opts.reconnect = Some(ReconnectPolicy::patient());
    run_local_cluster_opts(&case, &opts).expect("clean durable run");

    let crashed = 1usize;
    cut_wal_in_half(&scratch.0, crashed);
    // Preserve the truncated WAL so the second recovery replays the
    // exact same prefix (each recovery run appends to the log).
    let wal_path = scratch.0.join(format!("node{crashed}.wal"));
    let snapshot = fs::read(&wal_path).expect("snapshot wal");

    opts.recover = vec![crashed];
    let a = run_local_cluster_opts(&case, &opts).expect("first recovery");
    fs::write(&wal_path, &snapshot).expect("restore wal");
    let b = run_local_cluster_opts(&case, &opts).expect("second recovery");

    assert_eq!(
        a.merged_trace.to_canonical_string(),
        b.merged_trace.to_canonical_string(),
        "recovery reruns diverge"
    );
    assert_eq!(a.outcomes, b.outcomes);
}

/// The WAL a recovery leaves behind is itself valid and consistent: a
/// header plus the replayed prefix plus the live continuation, readable
/// end to end with no torn tail.
#[test]
fn a_recovered_wal_is_itself_readable() {
    let case = GateCase::from_text(SPIDER9, &[2, 7, 0, 5], 1, 9).expect("valid case");
    let scratch = TempDir::new("rewal");

    let mut opts = ClusterOpts::new(0xcafe);
    opts.wal_dir = Some(scratch.0.clone());
    run_local_cluster_opts(&case, &opts).expect("clean durable run");

    let crashed = 3usize;
    let kept = cut_wal_in_half(&scratch.0, crashed);
    opts.recover = vec![crashed];
    run_local_cluster_opts(&case, &opts).expect("recovered run");

    let scan = read_wal(&scratch.0.join(format!("node{crashed}.wal"))).expect("readable wal");
    assert!(
        scan.records.len() >= kept,
        "the continued log ({}) must extend the replayed prefix ({kept})",
        scan.records.len()
    );
    let on_disk = fs::metadata(scratch.0.join(format!("node{crashed}.wal")))
        .expect("stat wal")
        .len();
    assert_eq!(scan.valid_len, on_disk, "no torn tail after a clean exit");
}
