//! `Reliable<BundledAaParty>` over real loopback TCP: the bundled
//! many-instance AA party runs unchanged behind the async party traits,
//! and every node's per-instance outputs match the in-process
//! synchronous engine exactly.

use std::net::TcpListener;
use std::thread;

use async_net::Reliable;
use net::{run_node, NodeConfig};
use real_aa::{BundledAaParty, RealAaConfig};
use sim_net::{run_simulation, PartyId, Passive, SimConfig};

const N: usize = 4;
const T: usize = 1;
const K: usize = 3;

fn inputs_for(me: usize) -> Vec<f64> {
    // Distinct geometry per instance so agreement is non-trivial.
    (0..K)
        .map(|j| (me as f64) * 2.0 + (j as f64) * 0.71)
        .collect()
}

fn aa_config() -> RealAaConfig {
    RealAaConfig::new(N, T, 0.5, 8.0).expect("valid config")
}

fn sync_reference() -> Vec<Vec<f64>> {
    let cfg = aa_config();
    let report = run_simulation(
        SimConfig {
            n: N,
            t: T,
            max_rounds: 500,
        },
        |id, _n| BundledAaParty::new(id, cfg, inputs_for(id.index())).expect("k >= 1"),
        Passive,
    )
    .expect("reference simulation");
    report.honest_outputs()
}

#[test]
fn bundled_party_runs_over_real_sockets() {
    let cfg = aa_config();
    let listeners: Vec<TcpListener> = (0..N)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind"))
        .collect();
    let peers: Vec<_> = listeners
        .iter()
        .map(|l| l.local_addr().expect("addr"))
        .collect();

    let mut handles = Vec::with_capacity(N);
    for (me, listener) in listeners.into_iter().enumerate() {
        let mut node_cfg = NodeConfig::new(me, N, T, peers.clone(), 0xb0bb_1e00, 0x5eed, 7);
        node_cfg.label = "bundle-loopback".into();
        let party = Reliable::new(
            BundledAaParty::new(PartyId(me), cfg, inputs_for(me)).expect("k >= 1"),
            N,
        );
        handles.push(thread::spawn(move || {
            run_node(&node_cfg, listener, party, || {})
        }));
    }

    let mut outputs: Vec<Vec<f64>> = Vec::with_capacity(N);
    for (me, h) in handles.into_iter().enumerate() {
        let report = h
            .join()
            .unwrap_or_else(|_| panic!("node {me} panicked"))
            .unwrap_or_else(|e| panic!("node {me} failed: {e}"));
        assert_eq!(report.stats.rejected_malformed, 0, "node {me}");
        assert_eq!(report.stats.rejected_mac, 0, "node {me}");
        outputs.push(
            report
                .output
                .unwrap_or_else(|| panic!("node {me} had no output")),
        );
    }

    // Per-instance ε-agreement and validity over real sockets.
    for j in 0..K {
        let vals: Vec<f64> = outputs.iter().map(|o| o[j]).collect();
        let lo = vals.iter().cloned().fold(f64::MAX, f64::min);
        let hi = vals.iter().cloned().fold(f64::MIN, f64::max);
        assert!(hi - lo <= 0.5, "instance {j}: spread {} too wide", hi - lo);
        let in_lo = (0..N).map(|m| inputs_for(m)[j]).fold(f64::MAX, f64::min);
        let in_hi = (0..N).map(|m| inputs_for(m)[j]).fold(f64::MIN, f64::max);
        assert!(
            vals.iter().all(|v| (in_lo..=in_hi).contains(v)),
            "instance {j}: output left the input hull"
        );
    }

    // The networked run is not just correct — it is the same run: the
    // codec, framing, and virtual-time loop reproduce the in-process
    // synchronous engine's outputs bit for bit.
    assert_eq!(outputs, sync_reference());
}
