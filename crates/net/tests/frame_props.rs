//! Frame-codec properties: the length-prefixed framing layer must
//! round-trip arbitrary payloads under arbitrary chunking, and must
//! reject truncated, oversized, or garbage-prefixed input without
//! panicking or desyncing. Payloads are expanded deterministically from
//! seeds (the vendored proptest has no collection strategies), so every
//! failure reproduces from a few integers.

use net::{frame, FrameBuffer, FrameError, MAX_FRAME, PREFIX_LEN};
use proptest::prelude::*;

/// splitmix64 — deterministic seed-stream expansion.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A payload of `len` pseudo-random bytes derived from `seed`.
fn payload(seed: u64, len: usize) -> Vec<u8> {
    let mut s = seed;
    (0..len).map(|_| (next(&mut s) & 0xff) as u8).collect()
}

/// Feeds `bytes` into `fb` in pseudo-random chunks derived from `seed`.
fn push_chunked(fb: &mut FrameBuffer, bytes: &[u8], seed: u64) {
    let mut s = seed;
    let mut pos = 0;
    while pos < bytes.len() {
        let k = 1 + (next(&mut s) as usize) % 97;
        let end = (pos + k).min(bytes.len());
        fb.push(&bytes[pos..end]);
        pos = end;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any sequence of frames survives any chunking bit-for-bit, in
    /// order.
    #[test]
    fn roundtrip_any_payloads_any_chunking(seed in any::<u64>(), chunk_seed in any::<u64>()) {
        let mut s = seed;
        let count = 1 + (next(&mut s) as usize) % 8;
        let payloads: Vec<Vec<u8>> = (0..count)
            .map(|i| payload(seed ^ i as u64, (next(&mut s) as usize) % 2048))
            .collect();
        let mut wire = Vec::new();
        for p in &payloads {
            wire.extend_from_slice(&frame(p));
        }

        let mut fb = FrameBuffer::new();
        push_chunked(&mut fb, &wire, chunk_seed);
        for expect in &payloads {
            let got = fb.next_frame().expect("well-formed stream").expect("complete frame");
            prop_assert_eq!(&got, expect);
        }
        prop_assert!(fb.next_frame().expect("clean tail").is_none());
        prop_assert_eq!(fb.pending(), 0);
    }

    /// Truncation is never an error: a partial frame simply stays
    /// incomplete, and the missing tail completes it.
    #[test]
    fn truncated_frames_wait_without_error(seed in any::<u64>(), cut in any::<u64>()) {
        let p = payload(seed, 1 + (seed as usize) % 1024);
        let wire = frame(&p);
        // Cut strictly inside the frame (possibly inside the prefix).
        let cut = 1 + (cut as usize) % (wire.len() - 1);

        let mut fb = FrameBuffer::new();
        fb.push(&wire[..cut]);
        prop_assert!(fb.next_frame().expect("truncation is not an error").is_none());
        fb.push(&wire[cut..]);
        prop_assert_eq!(fb.next_frame().unwrap().unwrap(), p);
    }

    /// A prefix announcing more than `MAX_FRAME` is rejected — and the
    /// buffer stays poisoned: garbage can never desync the decoder into
    /// mis-framing later input.
    #[test]
    fn oversized_prefix_rejected_and_poisons(seed in any::<u64>()) {
        let oversized = MAX_FRAME as u32 + 1 + (seed % 1024) as u32;
        let mut fb = FrameBuffer::new();
        fb.push(&oversized.to_be_bytes());
        fb.push(&payload(seed, 32));
        prop_assert!(matches!(fb.next_frame(), Err(FrameError::Oversized { .. })));
        // Even a well-formed frame afterwards must not be accepted.
        fb.push(&frame(b"hello"));
        prop_assert!(fb.next_frame().is_err());
    }

    /// Arbitrary garbage never panics the decoder: every outcome is a
    /// clean wait, a bounded-length "frame" of garbage bytes (for the
    /// MAC layer to reject), or a poisoning error.
    #[test]
    fn garbage_never_panics_or_overreads(seed in any::<u64>(), chunk_seed in any::<u64>()) {
        let junk = payload(seed, (seed as usize) % 4096);
        let mut fb = FrameBuffer::new();
        push_chunked(&mut fb, &junk, chunk_seed);
        let mut consumed = 0usize;
        loop {
            match fb.next_frame() {
                Ok(Some(p)) => {
                    prop_assert!(p.len() <= MAX_FRAME);
                    consumed += PREFIX_LEN + p.len();
                    prop_assert!(consumed <= junk.len());
                }
                Ok(None) => break,
                Err(FrameError::Oversized { announced }) => {
                    prop_assert!(announced > MAX_FRAME);
                    break;
                }
            }
        }
    }
}

/// `frame` and `FrameBuffer` agree on the prefix convention exactly.
#[test]
fn prefix_is_big_endian_length() {
    let f = frame(b"abc");
    assert_eq!(&f[..PREFIX_LEN], &3u32.to_be_bytes());
    assert_eq!(&f[PREFIX_LEN..], b"abc");
}
