//! Codec round-trip properties: any trace the event model can express
//! must survive `to_canonical_string` → `parse` → `to_canonical_string`
//! bit-for-bit — the contract the golden-trace suite and the corpus
//! format depend on. Traces are expanded deterministically from a single
//! seed (the vendored proptest has no collection strategies), so every
//! failure is reproducible from one integer.

use aa_codec::Json;
use aa_trace::{EventKind, ProtoEvent, Trace, TraceEvent};
use proptest::prelude::*;

/// splitmix64 — deterministic seed-stream expansion.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A finite, canonical-representable f64 (integral halves).
fn arb_f64(s: &mut u64) -> f64 {
    (next(s) % 20_001) as f64 / 2.0 - 5_000.0
}

fn arb_json(s: &mut u64) -> Json {
    match next(s) % 5 {
        0 => Json::Null,
        1 => Json::Bool(next(s).is_multiple_of(2)),
        2 => Json::Num(arb_f64(s)),
        3 => Json::Str(format!("s{}", next(s) % 1000)),
        _ => Json::int(next(s) % 1_000_000),
    }
}

fn arb_proto(s: &mut u64) -> ProtoEvent {
    let labels = ["gc.grade", "realaa.iter", "treeaa.path", "pk.phase", "x"];
    let mut event = ProtoEvent::new(labels[(next(s) % 5) as usize]);
    for k in 0..next(s) % 4 {
        event.fields.push((format!("f{k}"), arb_json(s)));
    }
    event
}

fn arb_kind(s: &mut u64, n: usize) -> EventKind {
    let party = |s: &mut u64| (next(s) as usize) % n;
    match next(s) % 8 {
        0 => EventKind::RoundStart,
        1 => EventKind::Proto {
            party: party(s),
            event: arb_proto(s),
        },
        2 => EventKind::Corrupt { party: party(s) },
        3 => EventKind::Forward { party: party(s) },
        4 => EventKind::Broadcast {
            from: party(s),
            bytes: (next(s) % 4096) as usize,
            byzantine: next(s).is_multiple_of(2),
        },
        5 => EventKind::Unicast {
            from: party(s),
            to: party(s),
            bytes: (next(s) % 4096) as usize,
            byzantine: next(s).is_multiple_of(2),
        },
        6 => EventKind::Inject {
            from: party(s),
            to: party(s),
            bytes: (next(s) % 4096) as usize,
        },
        _ => EventKind::RoundEnd {
            honest_messages: (next(s) % 10_000) as usize,
            byzantine_messages: (next(s) % 10_000) as usize,
            bytes: (next(s) % (1 << 20)) as usize,
        },
    }
}

/// Expands a seed into a structurally arbitrary (not necessarily
/// well-bracketed) trace — the codec must round-trip *any* event list.
fn arb_trace(seed: u64) -> Trace {
    let mut s = seed;
    let n = 1 + (next(&mut s) as usize) % 16;
    let mut trace = Trace::new(n, n / 4, &format!("seed:{seed}"));
    let events = next(&mut s) % 40;
    let mut round = 0u32;
    for _ in 0..events {
        round += (next(&mut s) % 2) as u32;
        let kind = arb_kind(&mut s, n);
        trace.push(round, kind);
    }
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn encode_decode_encode_is_identity(seed in any::<u64>()) {
        let trace = arb_trace(seed);
        let text = trace.to_canonical_string();
        let parsed = Trace::parse(&text)
            .map_err(|e| TestCaseError::fail(format!("unparseable: {e}\n{text}")))?;
        prop_assert_eq!(&parsed, &trace);
        prop_assert_eq!(parsed.to_canonical_string(), text);
    }

    #[test]
    fn fingerprint_survives_the_roundtrip(seed in any::<u64>()) {
        let trace = arb_trace(seed);
        let parsed = Trace::parse(&trace.to_canonical_string()).unwrap();
        prop_assert_eq!(parsed.fingerprint(), trace.fingerprint());
    }

    #[test]
    fn event_json_roundtrips_individually(seed in any::<u64>()) {
        let trace = arb_trace(seed);
        for event in &trace.events {
            let json = event.to_json();
            let back = TraceEvent::from_json(&json)
                .map_err(|e| TestCaseError::fail(format!("{e}: {json}")))?;
            prop_assert_eq!(&back, event);
        }
    }
}
