//! Deterministic flight-recorder traces for the simulation stack.
//!
//! A [`Trace`] is an append-only log of structured events describing one
//! simulated run: engine events (round boundaries, every delivered send with
//! its byte cost, adversary corruption and forwarding actions) interleaved
//! with protocol-level events (gradecast grade assignment, RealAA hull
//! bounds per iteration, TreeAA path selection). The engine appends events
//! in a fixed order — party-id order within a round, senders in id order
//! during delivery — so a trace is **bit-identical across `Sequential` and
//! `Parallel` step modes**: same seed, same scenario, same bytes.
//!
//! Traces serialize through the canonical JSON codec in [`aa_codec`], which
//! renders any value to exactly one byte string; trace equality can
//! therefore be checked as string equality, and golden traces can be diffed
//! event-by-event.
//!
//! The module also ships trace-level invariant checkers used by the fuzz
//! harness and the conformance suite:
//!
//! * [`check_round_totals`] — per-round totals recorded at `RoundEnd` equal
//!   the totals recomputed from the individual send events;
//! * [`check_hull_monotone`] — the hull (spread) of honest parties'
//!   per-iteration AA values never grows;
//! * [`check_grade_semantics`] — honest gradecast grades for one leader
//!   differ by at most one, and all accepting parties bind the same value.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

pub use aa_codec::{fnv1a_64, Json};

/// A protocol-level event emitted by a party during its `step`.
///
/// `label` names the event kind (`"gc.grade"`, `"realaa.iter"`,
/// `"treeaa.path"`, ...); `fields` hold the payload in insertion order so
/// serialization stays canonical.
#[derive(Clone, Debug, PartialEq)]
pub struct ProtoEvent {
    /// Event kind, dot-namespaced by protocol (e.g. `"realaa.iter"`).
    pub label: String,
    /// Ordered key/value payload.
    pub fields: Vec<(String, Json)>,
}

impl ProtoEvent {
    /// Creates an event with no fields.
    pub fn new(label: &str) -> Self {
        ProtoEvent {
            label: label.to_string(),
            fields: Vec::new(),
        }
    }

    /// Appends an unsigned-integer field (builder style).
    #[must_use]
    pub fn u64(mut self, key: &str, value: u64) -> Self {
        self.fields.push((key.to_string(), Json::int(value)));
        self
    }

    /// Appends a float field (builder style).
    #[must_use]
    pub fn f64(mut self, key: &str, value: f64) -> Self {
        self.fields.push((key.to_string(), Json::Num(value)));
        self
    }

    /// Appends a string field (builder style).
    #[must_use]
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.fields
            .push((key.to_string(), Json::Str(value.to_string())));
        self
    }

    /// Appends a boolean field (builder style).
    #[must_use]
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.fields.push((key.to_string(), Json::Bool(value)));
        self
    }

    /// Looks up a field by key.
    pub fn field(&self, key: &str) -> Option<&Json> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// One trace event kind. Party indices are raw `usize`s so this crate has
/// no dependency on `sim-net` (which depends on us).
#[derive(Clone, Debug, PartialEq)]
pub enum EventKind {
    /// The engine began a round.
    RoundStart,
    /// A party emitted a protocol-level event during its step.
    Proto {
        /// The emitting party.
        party: usize,
        /// The event payload.
        event: ProtoEvent,
    },
    /// The adversary corrupted a party this round.
    Corrupt {
        /// The newly corrupted party.
        party: usize,
    },
    /// The adversary forwarded a corrupted party's honest traffic.
    Forward {
        /// The corrupted party whose tentative outbox was delivered.
        party: usize,
    },
    /// A broadcast was delivered to all `n` parties.
    Broadcast {
        /// The sender.
        from: usize,
        /// Payload size of **one** copy; the engine's accounting charges
        /// `bytes * n` for the fan-out.
        bytes: usize,
        /// Whether the sender was corrupted when it sent.
        byzantine: bool,
    },
    /// A unicast was delivered.
    Unicast {
        /// The sender.
        from: usize,
        /// The recipient.
        to: usize,
        /// Payload size.
        bytes: usize,
        /// Whether the sender was corrupted when it sent.
        byzantine: bool,
    },
    /// An adversary-injected message was delivered.
    Inject {
        /// The (corrupted) party the message claims to be from.
        from: usize,
        /// The recipient.
        to: usize,
        /// Payload size.
        bytes: usize,
    },
    /// The engine finished a round; totals mirror the round's metrics.
    RoundEnd {
        /// Messages delivered on behalf of honest parties this round.
        honest_messages: usize,
        /// Messages delivered on behalf of corrupted parties this round.
        byzantine_messages: usize,
        /// Total bytes on the wire this round.
        bytes: usize,
    },
    /// A fault plan dropped a message on the link `from -> to`.
    ///
    /// Fault events carry no byte cost: the message never reached the
    /// wire, so the totals checkers ignore them.
    FaultDrop {
        /// The sender.
        from: usize,
        /// The intended recipient.
        to: usize,
    },
    /// A fault plan duplicated a message on the link `from -> to` (the
    /// extra copy is delivered and charged like a normal send).
    FaultDuplicate {
        /// The sender.
        from: usize,
        /// The recipient of the duplicate copy.
        to: usize,
    },
    /// A fault plan crashed a party (benign crash, distinct from
    /// adversarial [`EventKind::Corrupt`]: the party may recover).
    FaultCrash {
        /// The crashed party.
        party: usize,
    },
    /// A previously crashed party recovered and rejoined.
    FaultRecover {
        /// The recovering party.
        party: usize,
    },
    /// A scheduled network partition came into effect.
    PartitionStart {
        /// Index of the partition in the fault plan.
        id: usize,
    },
    /// A scheduled network partition healed.
    PartitionHeal {
        /// Index of the partition in the fault plan.
        id: usize,
    },
    /// A real-transport node attempted to re-dial a disconnected peer.
    NetReconnect {
        /// The party attempting the reconnect.
        party: usize,
        /// The peer being re-dialed.
        peer: usize,
        /// 0-based attempt number within the backoff schedule.
        attempt: usize,
    },
    /// A real-transport node declared a peer dead (crash-fault budget
    /// consumed; the peer's watermark no longer gates progress).
    NetDeadPeer {
        /// The party making the declaration.
        party: usize,
        /// The peer declared dead.
        peer: usize,
    },
    /// A real-transport node exhausted its reconnect backoff schedule
    /// for a peer without re-establishing the connection.
    NetBackoffExhausted {
        /// The party that gave up dialing.
        party: usize,
        /// The unreachable peer.
        peer: usize,
        /// How many dial attempts were made.
        attempts: usize,
    },
    /// A real-transport node restarted from its write-ahead log and
    /// rejoined the protocol mid-run.
    NetRecovery {
        /// The recovering party.
        party: usize,
        /// How many protocol events were replayed from the WAL.
        replayed: usize,
    },
}

/// One entry of a [`Trace`]: a round number plus the event.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// The 1-based round the event belongs to.
    pub round: u32,
    /// What happened.
    pub kind: EventKind,
}

impl TraceEvent {
    /// Canonical JSON for this event (one flat object).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![("round".to_string(), Json::int(u64::from(self.round)))];
        let kind = |name: &str| ("kind".to_string(), Json::Str(name.to_string()));
        match &self.kind {
            EventKind::RoundStart => fields.push(kind("round_start")),
            EventKind::Proto { party, event } => {
                fields.push(kind("proto"));
                fields.push(("party".to_string(), Json::int(*party as u64)));
                fields.push(("label".to_string(), Json::Str(event.label.clone())));
                fields.push(("fields".to_string(), Json::Obj(event.fields.clone())));
            }
            EventKind::Corrupt { party } => {
                fields.push(kind("corrupt"));
                fields.push(("party".to_string(), Json::int(*party as u64)));
            }
            EventKind::Forward { party } => {
                fields.push(kind("forward"));
                fields.push(("party".to_string(), Json::int(*party as u64)));
            }
            EventKind::Broadcast {
                from,
                bytes,
                byzantine,
            } => {
                fields.push(kind("broadcast"));
                fields.push(("from".to_string(), Json::int(*from as u64)));
                fields.push(("bytes".to_string(), Json::int(*bytes as u64)));
                fields.push(("byz".to_string(), Json::Bool(*byzantine)));
            }
            EventKind::Unicast {
                from,
                to,
                bytes,
                byzantine,
            } => {
                fields.push(kind("unicast"));
                fields.push(("from".to_string(), Json::int(*from as u64)));
                fields.push(("to".to_string(), Json::int(*to as u64)));
                fields.push(("bytes".to_string(), Json::int(*bytes as u64)));
                fields.push(("byz".to_string(), Json::Bool(*byzantine)));
            }
            EventKind::Inject { from, to, bytes } => {
                fields.push(kind("inject"));
                fields.push(("from".to_string(), Json::int(*from as u64)));
                fields.push(("to".to_string(), Json::int(*to as u64)));
                fields.push(("bytes".to_string(), Json::int(*bytes as u64)));
            }
            EventKind::RoundEnd {
                honest_messages,
                byzantine_messages,
                bytes,
            } => {
                fields.push(kind("round_end"));
                fields.push(("honest".to_string(), Json::int(*honest_messages as u64)));
                fields.push(("byz".to_string(), Json::int(*byzantine_messages as u64)));
                fields.push(("bytes".to_string(), Json::int(*bytes as u64)));
            }
            EventKind::FaultDrop { from, to } => {
                fields.push(kind("fault_drop"));
                fields.push(("from".to_string(), Json::int(*from as u64)));
                fields.push(("to".to_string(), Json::int(*to as u64)));
            }
            EventKind::FaultDuplicate { from, to } => {
                fields.push(kind("fault_dup"));
                fields.push(("from".to_string(), Json::int(*from as u64)));
                fields.push(("to".to_string(), Json::int(*to as u64)));
            }
            EventKind::FaultCrash { party } => {
                fields.push(kind("fault_crash"));
                fields.push(("party".to_string(), Json::int(*party as u64)));
            }
            EventKind::FaultRecover { party } => {
                fields.push(kind("fault_recover"));
                fields.push(("party".to_string(), Json::int(*party as u64)));
            }
            EventKind::PartitionStart { id } => {
                fields.push(kind("partition_start"));
                fields.push(("id".to_string(), Json::int(*id as u64)));
            }
            EventKind::PartitionHeal { id } => {
                fields.push(kind("partition_heal"));
                fields.push(("id".to_string(), Json::int(*id as u64)));
            }
            EventKind::NetReconnect {
                party,
                peer,
                attempt,
            } => {
                fields.push(kind("net_reconnect"));
                fields.push(("party".to_string(), Json::int(*party as u64)));
                fields.push(("peer".to_string(), Json::int(*peer as u64)));
                fields.push(("attempt".to_string(), Json::int(*attempt as u64)));
            }
            EventKind::NetDeadPeer { party, peer } => {
                fields.push(kind("net_dead_peer"));
                fields.push(("party".to_string(), Json::int(*party as u64)));
                fields.push(("peer".to_string(), Json::int(*peer as u64)));
            }
            EventKind::NetBackoffExhausted {
                party,
                peer,
                attempts,
            } => {
                fields.push(kind("net_backoff_exhausted"));
                fields.push(("party".to_string(), Json::int(*party as u64)));
                fields.push(("peer".to_string(), Json::int(*peer as u64)));
                fields.push(("attempts".to_string(), Json::int(*attempts as u64)));
            }
            EventKind::NetRecovery { party, replayed } => {
                fields.push(kind("net_recovery"));
                fields.push(("party".to_string(), Json::int(*party as u64)));
                fields.push(("replayed".to_string(), Json::int(*replayed as u64)));
            }
        }
        Json::Obj(fields)
    }

    /// Parses one event object.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or ill-typed field.
    pub fn from_json(json: &Json) -> Result<TraceEvent, String> {
        let round = req_usize(json, "round")? as u32;
        let kind_name = json
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("event missing `kind`")?;
        let kind = match kind_name {
            "round_start" => EventKind::RoundStart,
            "proto" => {
                let label = json
                    .get("label")
                    .and_then(Json::as_str)
                    .ok_or("proto event missing `label`")?
                    .to_string();
                let fields = match json.get("fields") {
                    Some(Json::Obj(fields)) => fields.clone(),
                    _ => return Err("proto event missing `fields` object".into()),
                };
                EventKind::Proto {
                    party: req_usize(json, "party")?,
                    event: ProtoEvent { label, fields },
                }
            }
            "corrupt" => EventKind::Corrupt {
                party: req_usize(json, "party")?,
            },
            "forward" => EventKind::Forward {
                party: req_usize(json, "party")?,
            },
            "broadcast" => EventKind::Broadcast {
                from: req_usize(json, "from")?,
                bytes: req_usize(json, "bytes")?,
                byzantine: req_bool(json, "byz")?,
            },
            "unicast" => EventKind::Unicast {
                from: req_usize(json, "from")?,
                to: req_usize(json, "to")?,
                bytes: req_usize(json, "bytes")?,
                byzantine: req_bool(json, "byz")?,
            },
            "inject" => EventKind::Inject {
                from: req_usize(json, "from")?,
                to: req_usize(json, "to")?,
                bytes: req_usize(json, "bytes")?,
            },
            "round_end" => EventKind::RoundEnd {
                honest_messages: req_usize(json, "honest")?,
                byzantine_messages: req_usize(json, "byz")?,
                bytes: req_usize(json, "bytes")?,
            },
            "fault_drop" => EventKind::FaultDrop {
                from: req_usize(json, "from")?,
                to: req_usize(json, "to")?,
            },
            "fault_dup" => EventKind::FaultDuplicate {
                from: req_usize(json, "from")?,
                to: req_usize(json, "to")?,
            },
            "fault_crash" => EventKind::FaultCrash {
                party: req_usize(json, "party")?,
            },
            "fault_recover" => EventKind::FaultRecover {
                party: req_usize(json, "party")?,
            },
            "partition_start" => EventKind::PartitionStart {
                id: req_usize(json, "id")?,
            },
            "partition_heal" => EventKind::PartitionHeal {
                id: req_usize(json, "id")?,
            },
            "net_reconnect" => EventKind::NetReconnect {
                party: req_usize(json, "party")?,
                peer: req_usize(json, "peer")?,
                attempt: req_usize(json, "attempt")?,
            },
            "net_dead_peer" => EventKind::NetDeadPeer {
                party: req_usize(json, "party")?,
                peer: req_usize(json, "peer")?,
            },
            "net_backoff_exhausted" => EventKind::NetBackoffExhausted {
                party: req_usize(json, "party")?,
                peer: req_usize(json, "peer")?,
                attempts: req_usize(json, "attempts")?,
            },
            "net_recovery" => EventKind::NetRecovery {
                party: req_usize(json, "party")?,
                replayed: req_usize(json, "replayed")?,
            },
            other => return Err(format!("unknown event kind `{other}`")),
        };
        Ok(TraceEvent { round, kind })
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_json())
    }
}

fn req_usize(json: &Json, key: &str) -> Result<usize, String> {
    json.get(key)
        .and_then(Json::as_usize)
        .ok_or_else(|| format!("event missing integer `{key}`"))
}

fn req_bool(json: &Json, key: &str) -> Result<bool, String> {
    match json.get(key) {
        Some(Json::Bool(b)) => Ok(*b),
        _ => Err(format!("event missing boolean `{key}`")),
    }
}

/// A full flight-recorder trace of one simulated run.
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    /// Number of parties.
    pub n: usize,
    /// Corruption budget.
    pub t: usize,
    /// Free-form scenario label (`""` when not run from a named scenario).
    pub label: String,
    /// The event log, in emission order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new(n: usize, t: usize, label: &str) -> Self {
        Trace {
            n,
            t,
            label: label.to_string(),
            events: Vec::new(),
        }
    }

    /// Appends an event.
    pub fn push(&mut self, round: u32, kind: EventKind) {
        self.events.push(TraceEvent { round, kind });
    }

    /// Canonical JSON for the whole trace.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("n".to_string(), Json::int(self.n as u64)),
            ("t".to_string(), Json::int(self.t as u64)),
            ("label".to_string(), Json::Str(self.label.clone())),
            (
                "events".to_string(),
                Json::Arr(self.events.iter().map(TraceEvent::to_json).collect()),
            ),
        ])
    }

    /// The canonical byte string; two traces are bit-identical iff these
    /// strings are equal.
    pub fn to_canonical_string(&self) -> String {
        self.to_json().to_string()
    }

    /// FNV-1a fingerprint of the canonical byte string.
    pub fn fingerprint(&self) -> u64 {
        fnv1a_64(self.to_canonical_string().as_bytes())
    }

    /// Rebuilds a trace from its JSON form.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first missing or ill-typed field.
    pub fn from_json(json: &Json) -> Result<Trace, String> {
        let n = req_usize(json, "n")?;
        let t = req_usize(json, "t")?;
        let label = json
            .get("label")
            .and_then(Json::as_str)
            .ok_or("trace missing `label`")?
            .to_string();
        let raw = json
            .get("events")
            .and_then(Json::as_arr)
            .ok_or("trace missing `events` array")?;
        let events = raw
            .iter()
            .enumerate()
            .map(|(i, e)| TraceEvent::from_json(e).map_err(|m| format!("event {i}: {m}")))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Trace {
            n,
            t,
            label,
            events,
        })
    }

    /// Parses a trace from canonical (or any) JSON text.
    ///
    /// # Errors
    ///
    /// Returns the JSON syntax error or the first schema error.
    pub fn parse(text: &str) -> Result<Trace, String> {
        Trace::from_json(&Json::parse(text)?)
    }

    /// Whether any fault-plan event (drop, duplicate, crash, recover,
    /// partition boundary) was recorded.
    pub fn has_faults(&self) -> bool {
        self.events.iter().any(|e| {
            matches!(
                e.kind,
                EventKind::FaultDrop { .. }
                    | EventKind::FaultDuplicate { .. }
                    | EventKind::FaultCrash { .. }
                    | EventKind::FaultRecover { .. }
                    | EventKind::PartitionStart { .. }
                    | EventKind::PartitionHeal { .. }
            )
        })
    }

    /// The round each party was first corrupted in, if ever.
    pub fn corruption_rounds(&self) -> BTreeMap<usize, u32> {
        let mut out = BTreeMap::new();
        for e in &self.events {
            if let EventKind::Corrupt { party } = e.kind {
                out.entry(party).or_insert(e.round);
            }
        }
        out
    }
}

/// Message/byte totals recomputed from a trace's send events, mirroring the
/// engine's accounting (a broadcast counts `n` messages and `bytes * n`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Totals {
    /// Messages charged to honest parties.
    pub honest_messages: usize,
    /// Messages charged to corrupted parties (including injections).
    pub byzantine_messages: usize,
    /// Bytes on the wire.
    pub bytes: usize,
}

impl Totals {
    /// All messages, honest plus byzantine.
    pub fn messages(&self) -> usize {
        self.honest_messages + self.byzantine_messages
    }

    fn absorb(&mut self, kind: &EventKind, n: usize) {
        match *kind {
            EventKind::Broadcast {
                bytes, byzantine, ..
            } => {
                if byzantine {
                    self.byzantine_messages += n;
                } else {
                    self.honest_messages += n;
                }
                self.bytes += bytes * n;
            }
            EventKind::Unicast {
                bytes, byzantine, ..
            } => {
                if byzantine {
                    self.byzantine_messages += 1;
                } else {
                    self.honest_messages += 1;
                }
                self.bytes += bytes;
            }
            EventKind::Inject { bytes, .. } => {
                self.byzantine_messages += 1;
                self.bytes += bytes;
            }
            _ => {}
        }
    }
}

/// Recomputes run-wide totals from the trace's individual send events.
pub fn recomputed_totals(trace: &Trace) -> Totals {
    let mut totals = Totals::default();
    for e in &trace.events {
        totals.absorb(&e.kind, trace.n);
    }
    totals
}

/// Checks that every round is well-bracketed (`RoundStart` ... `RoundEnd`,
/// consecutive round numbers from 1) and that each `RoundEnd`'s totals equal
/// the totals recomputed from the round's traced sends.
///
/// # Errors
///
/// Returns a message pinpointing the first offending round.
pub fn check_round_totals(trace: &Trace) -> Result<(), String> {
    let mut current: Option<(u32, Totals)> = None;
    let mut last_closed = 0u32;
    for e in &trace.events {
        match &e.kind {
            EventKind::RoundStart => {
                if current.is_some() {
                    return Err(format!("round {} started inside an open round", e.round));
                }
                if e.round != last_closed + 1 {
                    return Err(format!(
                        "round {} started after round {last_closed}",
                        e.round
                    ));
                }
                current = Some((e.round, Totals::default()));
            }
            EventKind::RoundEnd {
                honest_messages,
                byzantine_messages,
                bytes,
            } => {
                let (round, totals) = current
                    .take()
                    .ok_or_else(|| format!("round {} ended without a matching start", e.round))?;
                if e.round != round {
                    return Err(format!(
                        "round {} ended while round {round} was open",
                        e.round
                    ));
                }
                let recorded = Totals {
                    honest_messages: *honest_messages,
                    byzantine_messages: *byzantine_messages,
                    bytes: *bytes,
                };
                if recorded != totals {
                    return Err(format!(
                        "round {round}: RoundEnd totals {recorded:?} != recomputed {totals:?}"
                    ));
                }
                last_closed = round;
            }
            kind => {
                let (round, totals) = current
                    .as_mut()
                    .ok_or_else(|| format!("event outside any round: {e}"))?;
                if e.round != *round {
                    return Err(format!(
                        "event tagged round {} inside round {round}: {e}",
                        e.round
                    ));
                }
                totals.absorb(kind, trace.n);
            }
        }
    }
    if current.is_some() {
        return Err("trace ends inside an open round".into());
    }
    Ok(())
}

/// Tolerance for float comparisons in the hull checker. The per-iteration
/// values are trimmed means of finitely many inputs; any growth beyond this
/// is a real violation, not rounding.
const HULL_TOL: f64 = 1e-9;

/// Checks that the spread (max − min) of honest parties' per-iteration AA
/// values is monotonically non-increasing, over the `realaa.iter` and
/// `halving.iter` event families.
///
/// A party's value for iteration `k` counts as honest if the party was not
/// yet corrupted in the round the event was emitted; since corruption is
/// monotone, the honest set can only shrink, and each new honest value lies
/// in the hull of the previous honest values — so the spread cannot grow.
///
/// # Errors
///
/// Returns a message naming the label, iteration, and offending spreads.
pub fn check_hull_monotone(trace: &Trace) -> Result<(), String> {
    let corrupted = trace.corruption_rounds();
    for label in ["realaa.iter", "halving.iter"] {
        // iteration -> honest values.
        let mut by_iter: BTreeMap<u64, Vec<f64>> = BTreeMap::new();
        for e in &trace.events {
            let EventKind::Proto { party, event } = &e.kind else {
                continue;
            };
            if event.label != label {
                continue;
            }
            if corrupted.get(party).is_some_and(|&cr| e.round >= cr) {
                continue;
            }
            let iter = event
                .field("iter")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{label} event missing `iter`"))?;
            let value = match event.field("value") {
                Some(Json::Num(x)) => *x,
                _ => return Err(format!("{label} event missing numeric `value`")),
            };
            by_iter.entry(iter).or_default().push(value);
        }
        let mut prev: Option<(u64, f64)> = None;
        for (iter, values) in &by_iter {
            let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let spread = hi - lo;
            if let Some((prev_iter, prev_spread)) = prev {
                if spread > prev_spread + HULL_TOL {
                    return Err(format!(
                        "{label}: honest hull grew from {prev_spread} (iter {prev_iter}) \
                         to {spread} (iter {iter})"
                    ));
                }
            }
            prev = Some((*iter, spread));
        }
    }
    Ok(())
}

/// Checks gradecast semantics over `gc.grade` events: for each (round,
/// instance, leader), honest parties' grades differ by at most one, and
/// every honest party with grade ≥ 1 binds the same value. The optional
/// `inst` field separates bundled AA instances sharing a round; events
/// without it (every single-instance protocol) group under instance 0.
///
/// # Errors
///
/// Returns a message naming the round, leader, and offending grades/values.
pub fn check_grade_semantics(trace: &Trace) -> Result<(), String> {
    /// Honest grades and bound values for one (round, instance, leader).
    type GradeGroup = (Vec<u64>, Vec<Json>);
    let corrupted = trace.corruption_rounds();
    let mut groups: BTreeMap<(u32, u64, u64), GradeGroup> = BTreeMap::new();
    for e in &trace.events {
        let EventKind::Proto { party, event } = &e.kind else {
            continue;
        };
        if event.label != "gc.grade" {
            continue;
        }
        if corrupted.get(party).is_some_and(|&cr| e.round >= cr) {
            continue;
        }
        let leader = event
            .field("leader")
            .and_then(Json::as_u64)
            .ok_or("gc.grade event missing `leader`")?;
        let inst = event.field("inst").and_then(Json::as_u64).unwrap_or(0);
        let grade = event
            .field("grade")
            .and_then(Json::as_u64)
            .ok_or("gc.grade event missing `grade`")?;
        let entry = groups.entry((e.round, inst, leader)).or_default();
        entry.0.push(grade);
        if grade >= 1 {
            let value = event
                .field("value")
                .cloned()
                .ok_or("gc.grade event with grade >= 1 missing `value`")?;
            entry.1.push(value);
        }
    }
    for ((round, inst, leader), (grades, values)) in &groups {
        let min = grades.iter().min().expect("non-empty group");
        let max = grades.iter().max().expect("non-empty group");
        if max - min > 1 {
            return Err(format!(
                "round {round}, instance {inst}, leader {leader}: honest grades {grades:?} \
                 differ by more than 1"
            ));
        }
        if let Some(first) = values.first() {
            if values.iter().any(|v| v != first) {
                return Err(format!(
                    "round {round}, instance {inst}, leader {leader}: accepting parties bound \
                     different values {values:?}"
                ));
            }
        }
    }
    Ok(())
}

/// Runs every trace-level invariant checker.
///
/// # Errors
///
/// Returns the first checker's message, prefixed with the checker name.
pub fn check_all(trace: &Trace) -> Result<(), String> {
    check_round_totals(trace).map_err(|m| format!("round totals: {m}"))?;
    check_hull_monotone(trace).map_err(|m| format!("hull monotonicity: {m}"))?;
    check_grade_semantics(trace).map_err(|m| format!("grade semantics: {m}"))?;
    Ok(())
}

/// The virtual-time sort key of a `vt`/`pseq`-stamped proto event:
/// `(vt, party, pseq)`. Virtual-time recordings (async-net's
/// `AsyncRecorder`, the real-socket nodes in `crates/net`) stamp every
/// proto event with these fields; sorting by this key turns any
/// interleaving — one global in-process log, or n per-process logs — into
/// the same canonical sequence.
///
/// # Errors
///
/// Returns a message if the event lacks the `vt`/`pseq` stamps (i.e. it
/// did not come from a virtual-time recording).
fn vt_key(event: &TraceEvent) -> Result<(f64, usize, u64), String> {
    let EventKind::Proto { party, event } = &event.kind else {
        return Err(format!("not a proto event: {event}"));
    };
    let vt = match event.field("vt") {
        Some(Json::Num(x)) => *x,
        _ => {
            return Err(format!(
                "proto event `{}` missing numeric `vt` stamp (not a virtual-time recording)",
                event.label
            ))
        }
    };
    let pseq = event
        .field("pseq")
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("proto event `{}` missing `pseq` stamp", event.label))?;
    Ok((vt, *party, pseq))
}

/// Extracts a trace's protocol events in canonical virtual-time order —
/// sorted by `(vt, party, pseq)`. This is the projection the differential
/// gate compares: engine/transport bookkeeping (fault drops, round
/// markers) is excluded, emission interleaving is normalized away.
///
/// # Errors
///
/// Returns a message if any proto event lacks the `vt`/`pseq` stamps.
pub fn proto_projection(trace: &Trace) -> Result<Vec<TraceEvent>, String> {
    let mut keyed: Vec<((f64, usize, u64), TraceEvent)> = trace
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Proto { .. }))
        .map(|e| vt_key(e).map(|k| (k, e.clone())))
        .collect::<Result<_, _>>()?;
    keyed.sort_by(|((ta, pa, sa), _), ((tb, pb, sb), _)| {
        ta.total_cmp(tb).then(pa.cmp(pb)).then(sa.cmp(sb))
    });
    Ok(keyed.into_iter().map(|(_, e)| e).collect())
}

/// Merges the per-process traces of one networked run into a single
/// canonical trace: headers must agree, proto events are sorted globally
/// by `(vt, party, pseq)`, and non-proto events (transport `fault_drop`s)
/// follow, sorted by round then canonical rendering. Two reruns of the
/// same deterministic schedule merge to bit-identical traces.
///
/// # Errors
///
/// Returns a message on header mismatch or a missing `vt`/`pseq` stamp.
pub fn merge_traces(traces: &[Trace]) -> Result<Trace, String> {
    let first = traces.first().ok_or("cannot merge zero traces")?;
    let mut merged = Trace::new(first.n, first.t, &first.label);
    for (i, t) in traces.iter().enumerate() {
        if (t.n, t.t, &t.label) != (first.n, first.t, &first.label) {
            return Err(format!(
                "trace {i} header (n={}, t={}, label={:?}) disagrees with trace 0 \
                 (n={}, t={}, label={:?})",
                t.n, t.t, t.label, first.n, first.t, first.label
            ));
        }
    }
    let combined = Trace {
        n: first.n,
        t: first.t,
        label: first.label.clone(),
        events: traces.iter().flat_map(|t| t.events.clone()).collect(),
    };
    merged.events = proto_projection(&combined)?;
    let mut rest: Vec<TraceEvent> = combined
        .events
        .iter()
        .filter(|e| !matches!(e.kind, EventKind::Proto { .. }))
        .cloned()
        .collect();
    rest.sort_by(|a, b| {
        a.round
            .cmp(&b.round)
            .then_with(|| a.to_json().to_string().cmp(&b.to_json().to_string()))
    });
    merged.events.extend(rest);
    Ok(merged)
}

/// The differential gate: checks that two virtual-time recordings contain
/// **identical protocol events** — same events, same payloads, same
/// canonical `(vt, party, pseq)` order — and returns how many events were
/// reconciled. `reference` is typically the in-process async-net run,
/// `networked` the merged per-process trace of a real-socket cluster run
/// of the same seed and topology.
///
/// # Errors
///
/// Returns a message naming the first diverging event index with both
/// canonical renderings (or the missing/extra tail), or a stamp/header
/// extraction failure.
pub fn reconcile_proto(reference: &Trace, networked: &Trace) -> Result<usize, String> {
    if (reference.n, reference.t) != (networked.n, networked.t) {
        return Err(format!(
            "header mismatch: reference (n={}, t={}) vs networked (n={}, t={})",
            reference.n, reference.t, networked.n, networked.t
        ));
    }
    let a = proto_projection(reference)?;
    let b = proto_projection(networked)?;
    for (i, (ea, eb)) in a.iter().zip(&b).enumerate() {
        let (ra, rb) = (ea.to_json().to_string(), eb.to_json().to_string());
        if ra != rb {
            return Err(format!(
                "first divergence at proto event {i}:\n  reference: {ra}\n  networked: {rb}"
            ));
        }
    }
    if a.len() != b.len() {
        let (longer, who) = if a.len() > b.len() {
            (&a, "reference")
        } else {
            (&b, "networked")
        };
        return Err(format!(
            "{} has {} extra proto event(s), first: {}",
            who,
            longer.len() - a.len().min(b.len()),
            longer[a.len().min(b.len())]
        ));
    }
    Ok(a.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round(trace: &mut Trace, r: u32, body: Vec<EventKind>) {
        trace.push(r, EventKind::RoundStart);
        let mut totals = Totals::default();
        for kind in body {
            totals.absorb(&kind, trace.n);
            trace.push(r, kind);
        }
        trace.push(
            r,
            EventKind::RoundEnd {
                honest_messages: totals.honest_messages,
                byzantine_messages: totals.byzantine_messages,
                bytes: totals.bytes,
            },
        );
    }

    fn sample_trace() -> Trace {
        let mut t = Trace::new(4, 1, "sample");
        round(
            &mut t,
            1,
            vec![
                EventKind::Proto {
                    party: 0,
                    event: ProtoEvent::new("realaa.iter")
                        .u64("iter", 0)
                        .f64("value", 0.5)
                        .f64("spread", 1.0),
                },
                EventKind::Corrupt { party: 3 },
                EventKind::Broadcast {
                    from: 0,
                    bytes: 12,
                    byzantine: false,
                },
                EventKind::Unicast {
                    from: 1,
                    to: 2,
                    bytes: 7,
                    byzantine: false,
                },
                EventKind::Inject {
                    from: 3,
                    to: 0,
                    bytes: 12,
                },
            ],
        );
        round(
            &mut t,
            2,
            vec![EventKind::Broadcast {
                from: 3,
                bytes: 2,
                byzantine: true,
            }],
        );
        t
    }

    #[test]
    fn json_roundtrip_is_identity() {
        let trace = sample_trace();
        let text = trace.to_canonical_string();
        let back = Trace::parse(&text).unwrap();
        assert_eq!(back, trace);
        assert_eq!(back.to_canonical_string(), text);
    }

    #[test]
    fn round_totals_accept_consistent_trace() {
        check_round_totals(&sample_trace()).unwrap();
    }

    #[test]
    fn round_totals_catch_mismatch() {
        let mut trace = sample_trace();
        // Tamper with the last RoundEnd.
        let last = trace.events.last_mut().unwrap();
        if let EventKind::RoundEnd { bytes, .. } = &mut last.kind {
            *bytes += 1;
        }
        let err = check_round_totals(&trace).unwrap_err();
        assert!(err.contains("round 2"), "{err}");
    }

    #[test]
    fn round_totals_catch_missing_bracket() {
        let mut trace = sample_trace();
        trace
            .events
            .retain(|e| e.kind != EventKind::RoundStart || e.round != 2);
        assert!(check_round_totals(&trace).is_err());
    }

    #[test]
    fn broadcast_charges_fanout() {
        let mut trace = Trace::new(5, 1, "");
        round(
            &mut trace,
            1,
            vec![EventKind::Broadcast {
                from: 2,
                bytes: 10,
                byzantine: false,
            }],
        );
        let totals = recomputed_totals(&trace);
        assert_eq!(totals.honest_messages, 5);
        assert_eq!(totals.bytes, 50);
    }

    #[test]
    fn hull_checker_accepts_shrinking_and_rejects_growth() {
        let mut trace = Trace::new(4, 1, "");
        let iter_event = |iter: u64, value: f64| EventKind::Proto {
            party: (value * 10.0) as usize % 4,
            event: ProtoEvent::new("realaa.iter")
                .u64("iter", iter)
                .f64("value", value),
        };
        round(
            &mut trace,
            1,
            vec![
                iter_event(0, 0.0),
                iter_event(0, 0.4),
                iter_event(1, 0.1),
                iter_event(1, 0.3),
            ],
        );
        check_hull_monotone(&trace).unwrap();

        let mut bad = Trace::new(4, 1, "");
        round(
            &mut bad,
            1,
            vec![
                iter_event(0, 0.0),
                iter_event(0, 0.1),
                iter_event(1, 0.0),
                iter_event(1, 0.9),
            ],
        );
        assert!(check_hull_monotone(&bad).is_err());
    }

    #[test]
    fn hull_checker_ignores_corrupted_parties() {
        let mut trace = Trace::new(4, 1, "");
        let ev = |party: usize, iter: u64, value: f64| EventKind::Proto {
            party,
            event: ProtoEvent::new("realaa.iter")
                .u64("iter", iter)
                .f64("value", value),
        };
        // Party 3 is corrupted in round 1; its wild values must not count.
        round(
            &mut trace,
            1,
            vec![
                EventKind::Corrupt { party: 3 },
                ev(0, 0, 0.0),
                ev(1, 0, 0.2),
                ev(3, 0, 100.0),
                ev(0, 1, 0.05),
                ev(1, 1, 0.15),
                ev(3, 1, -50.0),
            ],
        );
        check_hull_monotone(&trace).unwrap();
    }

    #[test]
    fn grade_checker_enforces_gap_and_binding() {
        let grade_ev = |party: usize, leader: u64, grade: u64, value: &str| EventKind::Proto {
            party,
            event: ProtoEvent::new("gc.grade")
                .u64("leader", leader)
                .u64("grade", grade)
                .str("value", value),
        };
        let mut good = Trace::new(4, 1, "");
        round(
            &mut good,
            1,
            vec![
                grade_ev(0, 0, 2, "a"),
                grade_ev(1, 0, 1, "a"),
                grade_ev(2, 0, 2, "a"),
            ],
        );
        check_grade_semantics(&good).unwrap();

        let mut gap = Trace::new(4, 1, "");
        round(
            &mut gap,
            1,
            vec![grade_ev(0, 0, 2, "a"), grade_ev(1, 0, 0, "a")],
        );
        assert!(check_grade_semantics(&gap).is_err());

        let mut split = Trace::new(4, 1, "");
        round(
            &mut split,
            1,
            vec![grade_ev(0, 0, 2, "a"), grade_ev(1, 0, 1, "b")],
        );
        assert!(check_grade_semantics(&split).is_err());
    }

    #[test]
    fn grade_checker_separates_bundle_instances() {
        let grade_ev =
            |party: usize, inst: u64, leader: u64, grade: u64, value: &str| EventKind::Proto {
                party,
                event: ProtoEvent::new("gc.grade")
                    .u64("inst", inst)
                    .u64("leader", leader)
                    .u64("grade", grade)
                    .str("value", value),
            };
        // Same round, same leader, different bundled instances binding
        // different values: legal — instances are independent gradecasts.
        let mut good = Trace::new(4, 1, "");
        round(
            &mut good,
            4,
            vec![
                grade_ev(0, 0, 1, 2, "a"),
                grade_ev(1, 0, 1, 2, "a"),
                grade_ev(0, 1, 1, 2, "b"),
                grade_ev(1, 1, 1, 2, "b"),
            ],
        );
        check_grade_semantics(&good).unwrap();

        // But a split *within* one instance is still caught.
        let mut split = Trace::new(4, 1, "");
        round(
            &mut split,
            4,
            vec![grade_ev(0, 1, 1, 2, "a"), grade_ev(1, 1, 1, 2, "b")],
        );
        let err = check_grade_semantics(&split).unwrap_err();
        assert!(err.contains("instance 1"), "unexpected message: {err}");
    }

    #[test]
    fn fault_events_roundtrip_and_cost_nothing() {
        let mut trace = Trace::new(4, 1, "faulty");
        round(
            &mut trace,
            1,
            vec![
                EventKind::PartitionStart { id: 0 },
                EventKind::FaultCrash { party: 2 },
                EventKind::FaultDrop { from: 0, to: 3 },
                EventKind::Broadcast {
                    from: 1,
                    bytes: 8,
                    byzantine: false,
                },
                EventKind::FaultDuplicate { from: 1, to: 0 },
            ],
        );
        round(
            &mut trace,
            2,
            vec![
                EventKind::PartitionHeal { id: 0 },
                EventKind::FaultRecover { party: 2 },
            ],
        );
        assert!(trace.has_faults());
        assert!(!sample_trace().has_faults());
        // Round-trip identity through canonical JSON.
        let text = trace.to_canonical_string();
        let back = Trace::parse(&text).unwrap();
        assert_eq!(back, trace);
        assert_eq!(back.to_canonical_string(), text);
        // Fault events carry no message/byte cost; only the broadcast counts.
        let totals = recomputed_totals(&trace);
        assert_eq!(totals.honest_messages, 4);
        assert_eq!(totals.bytes, 32);
        check_round_totals(&trace).unwrap();
    }

    #[test]
    fn fingerprint_tracks_content() {
        let a = sample_trace();
        let mut b = sample_trace();
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.label.push('!');
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    /// A `vt`/`pseq`-stamped proto event, as virtual-time recorders emit.
    fn stamped(party: usize, vt: f64, pseq: u64, iter: u64) -> TraceEvent {
        TraceEvent {
            round: vt.floor() as u32 + 1,
            kind: EventKind::Proto {
                party,
                event: ProtoEvent::new("treeaa.iter")
                    .u64("iter", iter)
                    .f64("vt", vt)
                    .u64("pseq", pseq),
            },
        }
    }

    #[test]
    fn proto_projection_sorts_by_vt_party_pseq() {
        let mut t = Trace::new(3, 0, "vt");
        for e in [
            stamped(2, 1.5, 0, 0),
            stamped(0, 0.5, 1, 1),
            stamped(0, 0.5, 0, 0),
            stamped(1, 0.5, 0, 0),
        ] {
            t.events.push(e);
        }
        t.events.push(TraceEvent {
            round: 1,
            kind: EventKind::FaultDrop { from: 0, to: 1 },
        });
        let proj = proto_projection(&t).unwrap();
        assert_eq!(proj.len(), 4, "non-proto events excluded");
        let keys: Vec<_> = proj.iter().map(|e| vt_key(e).unwrap()).collect();
        assert_eq!(
            keys,
            vec![(0.5, 0, 0), (0.5, 0, 1), (0.5, 1, 0), (1.5, 2, 0)]
        );
    }

    #[test]
    fn unstamped_proto_events_are_rejected() {
        let mut t = Trace::new(2, 0, "");
        t.push(
            1,
            EventKind::Proto {
                party: 0,
                event: ProtoEvent::new("gc.grade").u64("grade", 2),
            },
        );
        let err = proto_projection(&t).unwrap_err();
        assert!(err.contains("vt"), "{err}");
    }

    #[test]
    fn merge_is_order_invariant_and_header_checked() {
        let mut a = Trace::new(2, 0, "cluster");
        a.events.push(stamped(0, 0.7, 0, 0));
        a.events.push(stamped(0, 1.7, 1, 1));
        let mut b = Trace::new(2, 0, "cluster");
        b.events.push(stamped(1, 0.6, 0, 0));
        b.events.push(TraceEvent {
            round: 1,
            kind: EventKind::FaultDrop { from: 0, to: 1 },
        });
        let ab = merge_traces(&[a.clone(), b.clone()]).unwrap();
        let ba = merge_traces(&[b.clone(), a.clone()]).unwrap();
        assert_eq!(
            ab.to_canonical_string(),
            ba.to_canonical_string(),
            "merge must not depend on input order"
        );
        // Proto events first (sorted), transport events after.
        assert!(matches!(
            ab.events[0].kind,
            EventKind::Proto { party: 1, .. }
        ));
        assert!(matches!(
            ab.events.last().unwrap().kind,
            EventKind::FaultDrop { .. }
        ));

        let mut other = Trace::new(3, 0, "cluster");
        other.events.push(stamped(2, 0.9, 0, 0));
        assert!(merge_traces(&[a, other]).is_err(), "header mismatch");
    }

    #[test]
    fn reconcile_accepts_equal_and_pinpoints_divergence() {
        let mut reference = Trace::new(2, 0, "ref");
        reference.events.push(stamped(0, 0.5, 0, 0));
        reference.events.push(stamped(1, 0.9, 0, 0));
        // Same events recorded across two per-process traces.
        let mut p0 = Trace::new(2, 0, "ref");
        p0.events.push(stamped(0, 0.5, 0, 0));
        let mut p1 = Trace::new(2, 0, "ref");
        p1.events.push(stamped(1, 0.9, 0, 0));
        let merged = merge_traces(&[p0, p1]).unwrap();
        assert_eq!(reconcile_proto(&reference, &merged).unwrap(), 2);

        // A diverging payload is named with its index.
        let mut tampered = merged.clone();
        if let EventKind::Proto { event, .. } = &mut tampered.events[1].kind {
            event.fields[0].1 = Json::int(99);
        }
        let err = reconcile_proto(&reference, &tampered).unwrap_err();
        assert!(err.contains("event 1"), "{err}");

        // A missing event is reported as an extra on the other side.
        let mut short = merged.clone();
        short.events.pop();
        let err = reconcile_proto(&reference, &short).unwrap_err();
        assert!(err.contains("reference has 1 extra"), "{err}");
    }
}
