//! The bounded-DFS driver: stateless exploration by re-execution.
//!
//! Each execution is a **pure function** of `(instance, assignment,
//! script, depth)`: the protocol, adversary, and scheduler are all
//! deterministic, so replaying a script reproduces its run bit for bit —
//! which is what makes counterexamples replayable and reruns
//! fingerprint-identical. The driver walks the schedule tree in
//! depth-first order without keeping it in memory: each run records the
//! branching factor and choice taken at every decision, and the next
//! script is the deepest incrementable prefix (standard stateless
//! backtracking).

use std::collections::HashMap;
use std::sync::Arc;

use async_aa::{AsyncTreeAaConfig, AsyncTreeAaParty};
use async_net::{run_async_explored, AsyncConfig, AsyncReport, AsyncSimError, DelayModel};
use sim_net::Outcome;
use tree_model::{Tree, VertexId};

use crate::lattice::{LatticeAdversary, LatticeAssignment};
use crate::sched::EnumeratingScheduler;

/// One small instance to check exhaustively.
#[derive(Clone, Debug)]
pub struct Instance {
    /// Number of parties (corrupted parties are the last `t`).
    pub n: usize,
    /// Corruption bound.
    pub t: usize,
    /// The tree the parties agree on.
    pub tree: Arc<Tree>,
    /// Per-party inputs (entries for corrupted parties are ignored —
    /// their behaviour comes from the lattice assignment).
    pub inputs: Vec<VertexId>,
    /// Event budget per execution (guards livelocks).
    pub max_events: usize,
}

impl Instance {
    /// The async protocol configuration for this instance.
    ///
    /// # Panics
    ///
    /// Panics if `n ≤ 3t` (rejected earlier by [`crate::check`]).
    pub fn async_cfg(&self) -> AsyncTreeAaConfig {
        AsyncTreeAaConfig::new(self.n, self.t, &self.tree)
            .expect("instance validated before exploration")
    }
}

/// The outcome of executing one choice script.
pub struct Execution {
    /// The run's report, or why it ended early.
    pub result: Result<AsyncReport<Outcome<VertexId>>, AsyncSimError>,
    /// Awake choices available at each decision point.
    pub branching: Vec<usize>,
    /// Choice taken at each decision point.
    pub taken: Vec<usize>,
    /// The branch was cut because every pending message was asleep.
    pub pruned_by_sleep: bool,
    /// The branch was cut on a state visited at shallower depth.
    pub pruned_by_visited: bool,
    /// Deliveries in order: `(from, to, payload bytes)`.
    pub deliveries: Vec<(usize, usize, usize)>,
}

impl Execution {
    /// Whether this run was cut short by a pruning rule (as opposed to
    /// completing or genuinely deadlocking).
    pub fn pruned(&self) -> bool {
        self.pruned_by_sleep || self.pruned_by_visited
    }
}

/// Executes one script against `instance` under `assignment`.
///
/// `visited` carries state digests across the executions of one
/// exploration; pass a fresh map to replay a script in isolation (e.g.
/// when minimizing or replaying a counterexample).
pub fn execute(
    instance: &Instance,
    assignment: &LatticeAssignment,
    script: &[usize],
    depth: usize,
    visited: &mut HashMap<u64, usize>,
) -> Execution {
    let cfg = AsyncConfig {
        n: instance.n,
        t: instance.t,
        seed: 0,
        delay: DelayModel::Lockstep,
        max_events: instance.max_events,
    };
    let aa_cfg = instance.async_cfg();
    let tree = instance.tree.clone();
    let inputs = instance.inputs.clone();
    let mut sched = EnumeratingScheduler::new(depth, script, visited);
    let result = run_async_explored(
        &cfg,
        None,
        |me, _n| AsyncTreeAaParty::new(aa_cfg.clone(), tree.clone(), inputs[me.index()]),
        LatticeAdversary::new(instance.n, assignment.clone()),
        &mut sched,
    );
    Execution {
        result,
        branching: sched.branching,
        taken: sched.taken,
        pruned_by_sleep: sched.pruned_by_sleep,
        pruned_by_visited: sched.pruned_by_visited,
        deliveries: sched.deliveries,
    }
}

/// Counters from one exhaustive exploration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Scripts executed (including pruned ones).
    pub executions: usize,
    /// Executions that ran to completion and were property-checked.
    pub completed: usize,
    /// Branches cut by the sleep-set rule.
    pub pruned_sleep: usize,
    /// Branches cut by the visited-state rule.
    pub pruned_visited: usize,
    /// The exploration stopped at the execution budget before
    /// exhausting the schedule tree.
    pub truncated: bool,
}

/// The result of exploring one lattice assignment.
pub struct ExploreResult {
    /// Exploration counters.
    pub stats: ExploreStats,
    /// First violation found: the failing script and the description.
    pub failure: Option<(Vec<usize>, String)>,
}

/// Explores every delivery schedule of `instance` under `assignment` up
/// to `depth` enumerated decisions, calling `classify` on every
/// completed (non-pruned) execution. `classify` returns a violation
/// description to stop the exploration with a failure.
///
/// `max_runs` bounds the number of executions; hitting it sets
/// [`ExploreStats::truncated`] rather than erroring, so callers can
/// report partial coverage honestly.
pub fn explore<F>(
    instance: &Instance,
    assignment: &LatticeAssignment,
    depth: usize,
    max_runs: usize,
    mut classify: F,
) -> ExploreResult
where
    F: FnMut(&Execution, &[usize]) -> Option<String>,
{
    let mut stats = ExploreStats::default();
    let mut visited: HashMap<u64, usize> = HashMap::new();
    let mut script: Vec<usize> = Vec::new();
    loop {
        stats.executions += 1;
        let exec = execute(instance, assignment, &script, depth, &mut visited);
        if exec.pruned_by_sleep {
            stats.pruned_sleep += 1;
        } else if exec.pruned_by_visited {
            stats.pruned_visited += 1;
        } else {
            stats.completed += 1;
            if let Some(violation) = classify(&exec, &script) {
                return ExploreResult {
                    stats,
                    failure: Some((script, violation)),
                };
            }
        }
        // Deepest incrementable decision → next script (DFS backtrack).
        let next = (0..exec.taken.len())
            .rev()
            .find(|&k| exec.taken[k] + 1 < exec.branching[k]);
        match next {
            Some(k) => {
                script = exec.taken[..k].to_vec();
                script.push(exec.taken[k] + 1);
            }
            None => break,
        }
        if stats.executions >= max_runs {
            stats.truncated = true;
            break;
        }
    }
    ExploreResult {
        stats,
        failure: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::enumerate_assignments;
    use tree_model::generate;

    fn tiny_instance(n: usize, t: usize, vertices: usize) -> Instance {
        let tree = Arc::new(generate::path(vertices));
        let vs: Vec<VertexId> = tree.vertices().collect();
        let inputs = (0..n).map(|i| vs[i % vs.len()]).collect();
        Instance {
            n,
            t,
            tree,
            inputs,
            max_events: 200_000,
        }
    }

    #[test]
    fn honest_path3_explores_and_completes() {
        // path3 has diameter 2 → a real multi-iteration protocol run
        // (path2 would terminate at time 0 with no messages at all).
        let instance = tiny_instance(4, 0, 3);
        let assignment = &enumerate_assignments(0, 3)[0];
        let result = explore(&instance, assignment, 3, 10_000, |exec, _| {
            match &exec.result {
                Ok(_) => None,
                Err(e) => Some(format!("unexpected error: {e:?}")),
            }
        });
        assert!(result.failure.is_none(), "{:?}", result.failure);
        assert!(!result.stats.truncated);
        assert!(result.stats.completed >= 1);
        // The schedule tree branches: more than one execution happened.
        assert!(result.stats.executions > 1);
    }

    #[test]
    fn exploration_is_deterministic() {
        let instance = tiny_instance(4, 0, 3);
        let assignment = &enumerate_assignments(0, 3)[0];
        let run = || {
            let mut sig = Vec::new();
            let r = explore(&instance, assignment, 3, 10_000, |exec, script| {
                sig.push((script.to_vec(), exec.deliveries.clone()));
                None
            });
            (r.stats, sig)
        };
        let (s1, sig1) = run();
        let (s2, sig2) = run();
        assert_eq!(s1, s2);
        assert_eq!(sig1, sig2);
    }

    #[test]
    fn classify_failure_stops_with_the_script() {
        let instance = tiny_instance(4, 0, 3);
        let assignment = &enumerate_assignments(0, 3)[0];
        let mut count = 0;
        let result = explore(&instance, assignment, 2, 10_000, |_, _| {
            count += 1;
            (count == 2).then(|| "synthetic violation".to_string())
        });
        let (script, violation) = result.failure.expect("second completed run fails");
        assert_eq!(violation, "synthetic violation");
        // The failing script replays to the same deliveries.
        let mut fresh = HashMap::new();
        let replay = execute(&instance, assignment, &script, 2, &mut fresh);
        assert!(replay.result.is_ok());
    }
}
