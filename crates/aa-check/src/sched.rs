//! The enumerating [`Scheduler`]: one deterministic execution per choice
//! script, with sleep-set and visited-state pruning.
//!
//! The checker explores delivery schedules by *re-execution*: a run is a
//! pure function of its **choice script** — at each of the first `depth`
//! message deliveries the scheduler picks the script's choice among the
//! currently deliverable (awake) messages; past the script (or the depth
//! horizon) it always picks choice 0, which is FIFO creation order, the
//! canonical tail. While executing, the scheduler records how many
//! choices were available at each decision (`branching`) and which was
//! taken (`taken`), which is exactly what the driver needs to enumerate
//! the next unexplored script.
//!
//! Two prunings collapse redundant interleavings:
//!
//! * **Sleep sets** (DPOR): when the driver explores the siblings of a
//!   decision in order, each later sibling's subtree need not re-deliver
//!   the earlier siblings first — they are put to sleep and wake only
//!   when a *dependent* event (a delivery to the same recipient) runs.
//!   If every pending message is asleep the whole branch is redundant
//!   and the run stops with [`EnumeratingScheduler::pruned_by_sleep`].
//! * **Visited states**: after every activation inside the enumeration
//!   horizon, a canonical digest of (party states, pending queue in
//!   order with sleep flags) is checked against states seen at strictly
//!   shallower depth; on a hit the run aborts
//!   ([`EnumeratingScheduler::pruned_by_visited`]) because the shallower
//!   visit dominates every continuation still reachable from here.
//!
//! Timers only fire at quiescence (no deliverable message), at
//! `max(now, due)` in `(due, creation)` order — the natural enumeration
//! analogue of "timers are slower than any message chain".

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt::Debug;
use std::hash::{Hash, Hasher};

use async_net::{AsyncMetrics, SchedEvent, Scheduler};
use sim_net::{Envelope, PartyId, Payload};

/// Advance of the synthetic clock per popped event — keeps activation
/// times strictly increasing (so silence bookkeeping stays ordered)
/// while never crossing a unit-time boundary within a plausible run.
const TICK: f64 = 1e-6;

/// A message sitting in the enumeration queue (kept in creation order —
/// position 0 is the canonical FIFO head).
struct PendingMsg<M> {
    env: Envelope<M>,
    /// Asleep: not choosable until a same-recipient delivery wakes it.
    asleep: bool,
}

/// See the [module docs](self).
pub struct EnumeratingScheduler<'v, M> {
    /// Enumeration horizon: decisions beyond this index take choice 0.
    depth: usize,
    /// Choices to replay; shorter than `depth` means canonical tail.
    script: Vec<usize>,
    pending: Vec<PendingMsg<M>>,
    /// `(due, id, party, token)` — popped at quiescence in `(due, id)`
    /// order.
    timers: Vec<(f64, u64, PartyId, u64)>,
    next_id: u64,
    now: f64,
    /// Deliveries recorded in order (`from`, `to`, payload bytes) — the
    /// raw material of counterexample traces.
    pub deliveries: Vec<(usize, usize, usize)>,
    /// Number of awake choices at each decision point.
    pub branching: Vec<usize>,
    /// Choice taken at each decision point.
    pub taken: Vec<usize>,
    /// Set when a branch died because every pending message was asleep.
    pub pruned_by_sleep: bool,
    /// Set when the run aborted on a state already visited shallower.
    pub pruned_by_visited: bool,
    /// Digest of visited state → shallowest decision depth it was seen
    /// at; shared across the executions of one exploration.
    visited: &'v mut HashMap<u64, usize>,
    /// When `true`, every pushed send is enqueued twice — the
    /// at-least-once link abstraction used to drive the [`Reliable`]
    /// sublayer's dedup logic through enumerated schedules.
    ///
    /// [`Reliable`]: async_net::Reliable
    pub duplicate_sends: bool,
    metrics: AsyncMetrics,
}

impl<'v, M: Payload + Debug> EnumeratingScheduler<'v, M> {
    /// Creates a scheduler that replays `script` and enumerates up to
    /// `depth` decisions, sharing `visited` with sibling executions.
    pub fn new(depth: usize, script: &[usize], visited: &'v mut HashMap<u64, usize>) -> Self {
        EnumeratingScheduler {
            depth,
            script: script.to_vec(),
            pending: Vec::new(),
            timers: Vec::new(),
            next_id: 0,
            now: 0.0,
            deliveries: Vec::new(),
            branching: Vec::new(),
            taken: Vec::new(),
            pruned_by_sleep: false,
            pruned_by_visited: false,
            visited,
            duplicate_sends: false,
            metrics: AsyncMetrics::default(),
        }
    }

    fn enqueue(&mut self, env: Envelope<M>) {
        self.pending.push(PendingMsg { env, asleep: false });
    }

    /// Digest of the pending queue *in order* (content + sleep flags).
    /// Queue order matters: it determines the canonical tail, so two
    /// states may only be identified when their continuations coincide.
    fn queue_digest(&self, state_digest: u64) -> u64 {
        let mut h = DefaultHasher::new();
        state_digest.hash(&mut h);
        for msg in &self.pending {
            msg.env.from.index().hash(&mut h);
            msg.env.to.index().hash(&mut h);
            format!("{:?}", msg.env.payload).hash(&mut h);
            msg.asleep.hash(&mut h);
        }
        h.finish()
    }
}

impl<M: Payload + Debug> Scheduler<M> for EnumeratingScheduler<'_, M> {
    fn push_send(&mut self, _now: f64, env: Envelope<M>) {
        if self.duplicate_sends {
            self.metrics.fault_dups += 1;
            self.enqueue(env.clone());
        }
        self.enqueue(env);
    }

    fn push_timer(&mut self, now: f64, party: PartyId, token: u64, delay: f64) {
        self.timers.push((now + delay, self.next_id, party, token));
        self.next_id += 1;
    }

    fn push_at(&mut self, time: f64, what: SchedEvent<M>) {
        match what {
            SchedEvent::Deliver(env) => self.enqueue(env),
            SchedEvent::Timer { party, token } => {
                self.timers.push((time, self.next_id, party, token));
                self.next_id += 1;
            }
        }
    }

    fn pop(&mut self) -> Option<(f64, SchedEvent<M>)> {
        if !self.pending.is_empty() {
            let k = self.taken.len();
            let pos = if k < self.depth {
                // Enumerated decision: choose among awake messages.
                let awake: Vec<usize> = (0..self.pending.len())
                    .filter(|&i| !self.pending[i].asleep)
                    .collect();
                if awake.is_empty() {
                    // Every continuation from here re-orders events whose
                    // interleavings an earlier sibling already covers.
                    self.pruned_by_sleep = true;
                    return None;
                }
                // Clamp rather than assert: scripts generated against a
                // different assignment (the minimizer mutates behaviours)
                // may over-index a narrower awake list; `taken` records
                // what actually ran, so replays stay faithful.
                let choice = self
                    .script
                    .get(k)
                    .copied()
                    .unwrap_or(0)
                    .min(awake.len() - 1);
                self.branching.push(awake.len());
                self.taken.push(choice);
                // Sleep-set rule: the subtree for choice `c` must not
                // start with any earlier sibling — those interleavings
                // belong to the siblings' own subtrees.
                for &i in &awake[..choice] {
                    self.pending[i].asleep = true;
                }
                awake[choice]
            } else {
                // Canonical tail: FIFO, ignoring sleep flags (no
                // branching happens past the horizon, so delivering a
                // sleeping message cannot duplicate an explored branch).
                0
            };
            let msg = self.pending.remove(pos);
            // A delivery wakes everything dependent on it: later
            // deliveries to the same recipient no longer commute with
            // the schedule prefix.
            for other in &mut self.pending {
                if other.env.to == msg.env.to {
                    other.asleep = false;
                }
            }
            self.now += TICK;
            self.deliveries.push((
                msg.env.from.index(),
                msg.env.to.index(),
                msg.env.payload.size_bytes(),
            ));
            return Some((self.now, SchedEvent::Deliver(msg.env)));
        }
        // Quiescence: fire the earliest timer, jumping the clock to it.
        let best = self
            .timers
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
            .map(|(i, _)| i)?;
        let (due, _, party, token) = self.timers.remove(best);
        self.now = (self.now + TICK).max(due);
        Some((self.now, SchedEvent::Timer { party, token }))
    }

    fn metrics_mut(&mut self) -> &mut AsyncMetrics {
        &mut self.metrics
    }

    fn wants_observations(&self) -> bool {
        // Digests only matter while branching is still possible.
        self.taken.len() < self.depth
    }

    fn observe_state(&mut self, digest: u64) -> bool {
        let key = self.queue_digest(digest);
        let depth = self.taken.len();
        match self.visited.get_mut(&key) {
            Some(seen) if *seen < depth => {
                self.pruned_by_visited = true;
                false
            }
            Some(seen) => {
                *seen = depth;
                true
            }
            None => {
                self.visited.insert(key, depth);
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(from: usize, to: usize, payload: u64) -> Envelope<u64> {
        Envelope {
            from: PartyId(from),
            to: PartyId(to),
            payload,
        }
    }

    #[test]
    fn canonical_script_is_fifo() {
        let mut visited = HashMap::new();
        let mut s: EnumeratingScheduler<u64> = EnumeratingScheduler::new(2, &[], &mut visited);
        s.push_send(0.0, env(0, 1, 10));
        s.push_send(0.0, env(0, 2, 20));
        s.push_send(0.0, env(1, 2, 30));
        let order: Vec<u64> = std::iter::from_fn(|| s.pop())
            .map(|(_, e)| match e {
                SchedEvent::Deliver(env) => env.payload,
                SchedEvent::Timer { .. } => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![10, 20, 30]);
        assert_eq!(s.branching, vec![3, 2]);
        assert_eq!(s.taken, vec![0, 0]);
    }

    #[test]
    fn scripts_select_and_record_choices_and_sleep_earlier_siblings() {
        let mut visited = HashMap::new();
        // Choice 2 at the first decision: deliver payload 30 first, and
        // the skipped siblings (10, 20) go to sleep. 30 goes to party 2,
        // which wakes 20 (same recipient) but not 10.
        let mut s: EnumeratingScheduler<u64> = EnumeratingScheduler::new(3, &[2], &mut visited);
        s.push_send(0.0, env(0, 1, 10));
        s.push_send(0.0, env(0, 2, 20));
        s.push_send(0.0, env(1, 2, 30));
        let first = match s.pop().unwrap().1 {
            SchedEvent::Deliver(env) => env.payload,
            SchedEvent::Timer { .. } => unreachable!(),
        };
        assert_eq!(first, 30);
        assert_eq!(s.branching, vec![3]);
        assert_eq!(s.taken, vec![2]);
        // 10 is asleep, 20 awake: the next decision has exactly 1 choice.
        let second = match s.pop().unwrap().1 {
            SchedEvent::Deliver(env) => env.payload,
            SchedEvent::Timer { .. } => unreachable!(),
        };
        assert_eq!(second, 20);
        assert_eq!(s.branching, vec![3, 1]);
    }

    #[test]
    fn all_asleep_prunes_the_branch() {
        let mut visited = HashMap::new();
        let mut s: EnumeratingScheduler<u64> = EnumeratingScheduler::new(4, &[1], &mut visited);
        s.push_send(0.0, env(0, 1, 10));
        s.push_send(0.0, env(0, 2, 20));
        // Deliver 20 (choice 1): 10 goes to sleep and nothing to party 1
        // remains to wake it.
        let _ = s.pop().unwrap();
        assert!(s.pop().is_none());
        assert!(s.pruned_by_sleep);
        assert!(!s.pruned_by_visited);
    }

    #[test]
    fn timers_fire_at_quiescence_in_due_order() {
        let mut visited = HashMap::new();
        let mut s: EnumeratingScheduler<u64> = EnumeratingScheduler::new(0, &[], &mut visited);
        s.push_timer(0.0, PartyId(0), 7, 5.0);
        s.push_timer(0.0, PartyId(1), 8, 2.0);
        s.push_send(0.0, env(0, 1, 10));
        // The message drains first, then timers by due time.
        assert!(matches!(s.pop().unwrap().1, SchedEvent::Deliver(_)));
        let (t1, e1) = s.pop().unwrap();
        assert!(matches!(e1, SchedEvent::Timer { token: 8, .. }));
        assert!((t1 - 2.0).abs() < 1e-9);
        let (t2, e2) = s.pop().unwrap();
        assert!(matches!(e2, SchedEvent::Timer { token: 7, .. }));
        assert!((t2 - 5.0).abs() < 1e-9);
        assert!(s.pop().is_none());
    }

    #[test]
    fn visited_states_prune_only_when_seen_strictly_shallower() {
        let mut visited = HashMap::new();
        {
            let mut s: EnumeratingScheduler<u64> = EnumeratingScheduler::new(4, &[], &mut visited);
            s.taken = vec![0]; // pretend depth 1
            assert!(s.observe_state(42)); // first visit: recorded
            assert!(s.observe_state(42)); // same depth: replay, no prune
        }
        {
            let mut s: EnumeratingScheduler<u64> = EnumeratingScheduler::new(4, &[], &mut visited);
            s.taken = vec![0, 1]; // deeper than the recorded visit
            assert!(!s.observe_state(42));
            assert!(s.pruned_by_visited);
        }
    }

    #[test]
    fn duplicate_sends_enqueue_two_copies() {
        let mut visited = HashMap::new();
        let mut s: EnumeratingScheduler<u64> = EnumeratingScheduler::new(0, &[], &mut visited);
        s.duplicate_sends = true;
        s.push_send(0.0, env(0, 1, 10));
        assert_eq!(s.pending.len(), 2);
        assert_eq!(s.metrics.fault_dups, 1);
    }
}
