//! `aa-check`: a bounded model checker for the tree-AA protocol stack.
//!
//! For small instances (n ≤ 5, trees of ≤ 7 vertices) the checker
//! exhaustively enumerates
//!
//! * every Byzantine **value assignment** from a finite message-lattice
//!   abstraction ([`lattice`]) — silence, consistent off-hull values,
//!   and split-brain equivocation over the extreme and midpoint
//!   vertices — and
//! * every **asynchronous delivery schedule** up to a configurable
//!   decision depth ([`explore`]), with sleep-set (DPOR) and
//!   visited-state pruning collapsing commuting deliveries
//!   ([`sched`]),
//!
//! and checks validity, convex-hull containment, 1-agreement, the
//! explicit termination bound, and the degradation contract on every
//! explored execution ([`props`]). A differential mode ([`diff`]) runs
//! the same case through the synchronous simulator and the seeded
//! asynchronous scheduler and asserts the models agree wherever both
//! are defined. Violations come back as minimized, byte-for-byte
//! replayable [`aa_trace`] recordings ([`cex`]).
//!
//! The entry point is [`check`]; the `treeaa check` CLI subcommand is a
//! thin wrapper around it.

#![warn(missing_docs)]

pub mod cex;
pub mod diff;
pub mod explore;
pub mod lattice;
pub mod props;
pub mod sched;

use std::fmt;
use std::sync::Arc;

use async_net::AsyncSimError;
use sim_net::Outcome;
use tree_model::{ProjectionTable, Tree, VertexId};

pub use cex::Counterexample;
pub use explore::{ExploreStats, Instance};
pub use lattice::{enumerate_assignments, ByzBehavior, LatticeAssignment};
pub use props::PropViolation;

/// Which protocol stack's guarantees to check on explored executions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckProtocol {
    /// Vertex-valued tree AA: hull validity and 1-agreement.
    TreeAa,
    /// The Section 5 real-valued view: explored outputs are additionally
    /// projected onto the diameter path and checked for interval
    /// validity and ε-agreement (ε = 1 position).
    RealAa,
}

impl CheckProtocol {
    /// Parses the CLI spelling (`tree-aa` / `real-aa`).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "tree-aa" => Ok(CheckProtocol::TreeAa),
            "real-aa" => Ok(CheckProtocol::RealAa),
            other => Err(format!(
                "unknown protocol {other:?} (expected tree-aa or real-aa)"
            )),
        }
    }
}

impl fmt::Display for CheckProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CheckProtocol::TreeAa => "tree-aa",
            CheckProtocol::RealAa => "real-aa",
        })
    }
}

/// What to check and how hard to look.
#[derive(Clone, Debug)]
pub struct CheckOptions {
    /// Number of parties (must satisfy `n > 3t`; the checker is built
    /// for `n ≤ 5`).
    pub n: usize,
    /// Corruption bound; the last `t` parties are corrupted.
    pub t: usize,
    /// The tree (≤ 7 vertices for tractable enumeration).
    pub tree: Arc<Tree>,
    /// Which property set to check.
    pub protocol: CheckProtocol,
    /// Per-party inputs; `None` spreads parties over the vertices
    /// (`party i ↦ vertex i mod m`).
    pub inputs: Option<Vec<VertexId>>,
    /// Enumerated decisions per execution; deliveries beyond this depth
    /// follow the canonical FIFO tail.
    pub depth: usize,
    /// Total execution budget across all lattice assignments.
    pub max_runs: usize,
    /// Event budget per execution (guards protocol livelocks).
    pub max_events: usize,
}

impl CheckOptions {
    /// Defaults for an instance: depth 3, 50 000 runs, 200 000 events.
    pub fn new(n: usize, t: usize, tree: Arc<Tree>, protocol: CheckProtocol) -> Self {
        CheckOptions {
            n,
            t,
            tree,
            protocol,
            inputs: None,
            depth: 3,
            max_runs: 50_000,
            max_events: 200_000,
        }
    }
}

/// The verdict of an exhaustive check.
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// Parties / corruption bound / depth the check ran at.
    pub n: usize,
    /// Corruption bound.
    pub t: usize,
    /// Enumeration depth.
    pub depth: usize,
    /// The property set that was checked.
    pub protocol: CheckProtocol,
    /// Lattice assignments enumerated.
    pub assignments: usize,
    /// Total executions across all assignments (including pruned).
    pub executions: usize,
    /// Executions that completed and were property-checked.
    pub completed: usize,
    /// Branches cut by the sleep-set rule.
    pub pruned_sleep: usize,
    /// Branches cut by the visited-state rule.
    pub pruned_visited: usize,
    /// The run budget was exhausted before the schedule tree.
    pub truncated: bool,
    /// Fingerprint of the canonical (FIFO, honest-only) execution's
    /// trace — identical across reruns of the same options.
    pub canonical_fingerprint: u64,
    /// The minimized counterexample, if any property failed.
    pub violation: Option<Counterexample>,
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "aa-check: n={} t={} protocol={} depth={}",
            self.n, self.t, self.protocol, self.depth
        )?;
        writeln!(f, "lattice assignments: {}", self.assignments)?;
        writeln!(
            f,
            "executions: {} (completed {}, pruned: sleep {}, visited {}){}",
            self.executions,
            self.completed,
            self.pruned_sleep,
            self.pruned_visited,
            if self.truncated {
                " [truncated at run budget]"
            } else {
                ""
            }
        )?;
        writeln!(
            f,
            "canonical fingerprint: {:016x}",
            self.canonical_fingerprint
        )?;
        match &self.violation {
            None => write!(f, "verdict: PASS — no violations in any explored execution"),
            Some(cex) => write!(
                f,
                "verdict: FAIL — {}\n  assignment: {}\n  script: {:?}",
                cex.violation,
                cex.assignment.describe(),
                cex.script
            ),
        }
    }
}

/// An explicit bound on the messages a completed execution may deliver:
/// per iteration each of the `n` RBC instances sends at most `n` Inits,
/// `n²` Echoes and `n²` Readies, plus `n²` Reports; the adversary
/// injects at most `2tn` messages at time 0 (Init + forged Echo per
/// honest recipient per corrupted party).
pub fn delivered_message_bound(n: usize, t: usize, iterations: u32) -> usize {
    (iterations as usize) * (n * (n + 2 * n * n) + n * n) + 2 * t * n + n * n
}

#[cfg(test)]
pub(crate) mod test_hooks {
    //! A deliberately planted hull-violation bug, gated behind
    //! `cfg(test)`: when armed, the checker's view of the first honest
    //! output is skewed to an off-hull vertex, simulating a protocol
    //! that escapes the honest inputs' convex hull. The acceptance test
    //! arms it and asserts the checker catches it with a minimized,
    //! replayable counterexample.
    use std::cell::Cell;

    thread_local! {
        static PLANTED_HULL_BUG: Cell<bool> = const { Cell::new(false) };
    }

    /// Arms (or disarms) the planted bug for the current thread.
    pub fn set_planted_hull_bug(on: bool) {
        PLANTED_HULL_BUG.with(|b| b.set(on));
    }

    /// Whether the bug is armed.
    pub fn planted_hull_bug() -> bool {
        PLANTED_HULL_BUG.with(|b| b.get())
    }
}

/// Skews the first output to a vertex outside the honest inputs' hull
/// (the planted bug's effect); no-op if the hull covers the whole tree.
#[cfg(test)]
fn apply_planted_bug(tree: &Tree, honest_inputs: &[VertexId], values: &mut [VertexId]) {
    if !test_hooks::planted_hull_bug() || values.is_empty() {
        return;
    }
    let hull = tree.convex_hull(honest_inputs);
    if let Some(off) = tree.vertices().find(|&v| !hull.contains(v)) {
        values[0] = off;
    }
}

/// Classifies one completed execution against the property set; shared
/// by the exploration loop and the counterexample minimizer.
fn classify_execution(
    instance: &Instance,
    protocol: CheckProtocol,
    projection: &ProjectionTable,
    exec: &explore::Execution,
) -> Option<String> {
    let report = match &exec.result {
        Ok(report) => report,
        // Pruned branches are filtered before classification; a stall
        // that was *not* pruned is a genuine asynchronous deadlock.
        Err(AsyncSimError::Aborted { .. }) => return None,
        Err(AsyncSimError::Stalled { events }) => {
            return Some(format!(
                "asynchronous deadlock: honest parties undecided after {events} events"
            ))
        }
        Err(e) => return Some(format!("simulator rejected the run: {e:?}")),
    };
    let honest = instance.n - instance.t;
    let honest_inputs = &instance.inputs[..honest];

    // Degradation contract on every honest outcome.
    for (party, output) in report.outputs.iter().enumerate().take(honest) {
        let Some(outcome) = output else {
            return Some(format!("honest party {party} finished without an output"));
        };
        if let Err(v) = props::check_degradation_outcome(party, outcome) {
            return Some(v.to_string());
        }
    }

    // Termination: the run must fit the explicit message bound.
    let bound = delivered_message_bound(instance.n, instance.t, instance.async_cfg().iterations);
    if report.messages_delivered > bound {
        return Some(format!(
            "termination bound violated: {} messages delivered, explicit bound {bound}",
            report.messages_delivered
        ));
    }

    // Hull validity and agreement apply to fully guaranteed runs; a
    // (contract-valid) degraded run has already waived them.
    let mut values = Vec::with_capacity(honest);
    for output in report.outputs.iter().take(honest) {
        match output.as_ref() {
            Some(Outcome::Value(v)) => values.push(*v),
            Some(Outcome::Degraded(_)) => return None,
            None => unreachable!("checked above"),
        }
    }
    #[cfg(test)]
    apply_planted_bug(&instance.tree, honest_inputs, &mut values);
    if let Err(v) = props::check_vertex_outcome(&instance.tree, honest_inputs, &values) {
        return Some(v.to_string());
    }
    if protocol == CheckProtocol::RealAa {
        let in_pos: Vec<f64> = honest_inputs
            .iter()
            .map(|&v| projection.position(v) as f64)
            .collect();
        let out_pos: Vec<f64> = values
            .iter()
            .map(|&v| projection.position(v) as f64)
            .collect();
        if let Err(v) = props::check_real_outcome(&in_pos, &out_pos, 1.0) {
            return Some(format!("projected onto the diameter path: {v}"));
        }
    }
    None
}

/// Exhaustively checks `opts`, returning explored/pruned counts and the
/// first (minimized) violation if any.
///
/// # Errors
///
/// A human-readable reason when the options themselves are invalid
/// (`n ≤ 3t`, oversized instance, bad inputs) — as opposed to a
/// property violation, which is reported in [`CheckReport::violation`].
pub fn check(opts: &CheckOptions) -> Result<CheckReport, String> {
    let m = opts.tree.vertex_count();
    if opts.n == 0 || opts.n <= 3 * opts.t {
        return Err(format!(
            "check requires n > 3t, got n = {}, t = {}",
            opts.n, opts.t
        ));
    }
    if opts.n > 5 {
        return Err(format!("check is built for n <= 5, got n = {}", opts.n));
    }
    if m > 7 {
        return Err(format!(
            "check is built for trees of <= 7 vertices, got {m}"
        ));
    }
    let vs: Vec<VertexId> = opts.tree.vertices().collect();
    let inputs = match &opts.inputs {
        Some(inputs) => {
            if inputs.len() != opts.n {
                return Err(format!("expected {} inputs, got {}", opts.n, inputs.len()));
            }
            if let Some(v) = inputs.iter().find(|v| v.index() >= m) {
                return Err(format!("input vertex {v} out of range for {m} vertices"));
            }
            inputs.clone()
        }
        None => (0..opts.n).map(|i| vs[i % m]).collect(),
    };
    let instance = Instance {
        n: opts.n,
        t: opts.t,
        tree: opts.tree.clone(),
        inputs,
        max_events: opts.max_events,
    };
    let dinfo = instance.tree.diameter_info();
    let projection = ProjectionTable::new(&instance.tree, &dinfo.path);

    let assignments = enumerate_assignments(opts.t, m);
    let mut report = CheckReport {
        n: opts.n,
        t: opts.t,
        depth: opts.depth,
        protocol: opts.protocol,
        assignments: assignments.len(),
        executions: 0,
        completed: 0,
        pruned_sleep: 0,
        pruned_visited: 0,
        truncated: false,
        canonical_fingerprint: 0,
        violation: None,
    };

    // Canonical fingerprint: the FIFO execution of the first assignment,
    // replayed in isolation so exploration order cannot perturb it.
    {
        let mut visited = std::collections::HashMap::new();
        let exec = explore::execute(&instance, &assignments[0], &[], opts.depth, &mut visited);
        report.canonical_fingerprint =
            cex::emit_trace(&instance, &assignments[0], &[], &exec, "none").fingerprint();
    }

    // Differential legs (honest-only; cross-model agreement).
    if let Err(detail) = diff::differential(&instance, opts.depth) {
        let honest_only = LatticeAssignment {
            behaviors: Vec::new(),
        };
        let mut visited = std::collections::HashMap::new();
        let exec = explore::execute(&instance, &honest_only, &[], opts.depth, &mut visited);
        let violation = format!("differential: {detail}");
        let trace = cex::emit_trace(&instance, &honest_only, &[], &exec, &violation);
        report.violation = Some(Counterexample {
            assignment: honest_only,
            script: Vec::new(),
            violation,
            depth: opts.depth,
            trace,
        });
        return Ok(report);
    }

    for assignment in &assignments {
        let remaining = opts.max_runs.saturating_sub(report.executions);
        if remaining == 0 {
            report.truncated = true;
            break;
        }
        let result = explore::explore(&instance, assignment, opts.depth, remaining, |exec, _| {
            classify_execution(&instance, opts.protocol, &projection, exec)
        });
        report.executions += result.stats.executions;
        report.completed += result.stats.completed;
        report.pruned_sleep += result.stats.pruned_sleep;
        report.pruned_visited += result.stats.pruned_visited;
        report.truncated |= result.stats.truncated;
        if let Some((script, violation)) = result.failure {
            let cex = cex::minimize(
                &instance,
                opts.depth,
                assignment.clone(),
                script,
                violation,
                |exec, _| classify_execution(&instance, opts.protocol, &projection, exec),
            );
            report.violation = Some(cex);
            break;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tree_model::generate;

    fn opts(n: usize, t: usize, vertices: usize) -> CheckOptions {
        CheckOptions::new(
            n,
            t,
            Arc::new(generate::path(vertices)),
            CheckProtocol::TreeAa,
        )
    }

    #[test]
    fn rejects_oversized_and_invalid_instances() {
        assert!(check(&opts(6, 0, 4)).is_err());
        assert!(check(&opts(4, 2, 4)).is_err());
        assert!(check(&opts(4, 0, 8)).is_err());
        let mut bad = opts(4, 0, 4);
        let v0 = bad.tree.vertices().next().unwrap();
        bad.inputs = Some(vec![v0; 3]);
        assert!(check(&bad).is_err());
    }

    #[test]
    fn honest_path4_passes_exhaustively() {
        let mut o = opts(4, 0, 4);
        o.depth = 2;
        let report = check(&o).unwrap();
        assert!(report.violation.is_none(), "{report}");
        assert!(!report.truncated);
        assert!(report.completed >= 1);
        assert!(report.executions > 10, "no branching explored: {report}");
        assert_eq!(report.assignments, 1);
    }

    #[test]
    fn byzantine_lattice_passes_on_path2() {
        // path2 has diameter 1 → zero iterations, so the protocol logic
        // is trivial, but the full 4-assignment lattice and schedule
        // enumeration still runs (adversary traffic is still delivered).
        let mut o = opts(4, 1, 2);
        o.depth = 2;
        let report = check(&o).unwrap();
        assert!(report.violation.is_none(), "{report}");
        assert_eq!(report.assignments, 4);
        assert!(!report.truncated);
    }

    #[test]
    fn real_aa_projection_view_passes() {
        let mut o = opts(4, 0, 4);
        o.protocol = CheckProtocol::RealAa;
        o.depth = 2;
        let report = check(&o).unwrap();
        assert!(report.violation.is_none(), "{report}");
    }

    #[test]
    fn reruns_are_bit_identical() {
        let mut o = opts(4, 0, 3);
        o.depth = 2;
        let r1 = check(&o).unwrap();
        let r2 = check(&o).unwrap();
        assert_eq!(r1.to_string(), r2.to_string());
        assert_eq!(r1.canonical_fingerprint, r2.canonical_fingerprint);
    }

    #[test]
    fn planted_hull_bug_is_caught_minimized_and_replayable() {
        // Unanimous inputs confine the hull to one vertex, so the
        // planted bug's off-hull skew is always detectable.
        let mut o = opts(4, 0, 4);
        o.depth = 2;
        let v0 = o.tree.vertices().next().unwrap();
        o.inputs = Some(vec![v0; 4]);
        test_hooks::set_planted_hull_bug(true);
        let report = check(&o);
        test_hooks::set_planted_hull_bug(false);
        let report = report.unwrap();
        let cex = report.violation.expect("planted bug must be caught");
        assert!(
            cex.violation.contains("validity")
                || cex.violation.contains("hull")
                || cex.violation.contains("differential"),
            "unexpected violation: {}",
            cex.violation
        );
        // Minimization drove the witness to the canonical schedule.
        assert!(cex.script.is_empty(), "not minimal: {:?}", cex.script);
        // The trace replays byte-for-byte: execution is deterministic,
        // so re-running the stored (assignment, script) reproduces it.
        let instance = Instance {
            n: 4,
            t: 0,
            tree: o.tree.clone(),
            inputs: vec![v0; 4],
            max_events: o.max_events,
        };
        let replayed = cex.replay(&instance);
        assert_eq!(
            replayed.to_canonical_string(),
            cex.trace.to_canonical_string()
        );
    }
}
