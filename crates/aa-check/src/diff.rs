//! Differential checking: the same instance through every model.
//!
//! The checker runs one honest instance through four independent stacks
//! and cross-asserts them wherever two models are both defined:
//!
//! 1. **Canonical explored** — the empty-script run of the enumerating
//!    scheduler (FIFO delivery, async tree AA).
//! 2. **Seeded lockstep async** — the production [`SeededScheduler`]
//!    under [`DelayModel::Lockstep`]. FIFO enumeration order *is*
//!    lockstep order (every delay is exactly 1, ties broken by creation
//!    order), so legs 1 and 2 must produce *identical* outputs.
//! 3. **Synchronous tree AA** — [`TreeAaParty`] on the lockstep
//!    round-based simulator. A different protocol on a different
//!    simulator, so only the paper's properties are asserted — except
//!    under unanimous inputs, where every correct AA protocol must
//!    output exactly the common input.
//! 4. **Real-valued AA on the diameter path** — the Section 5
//!    reduction: inputs projected to path positions, run through
//!    [`RealAaParty`] with ε = 1. Checked for interval validity and
//!    ε-agreement (and exactness under unanimity).
//!
//! [`SeededScheduler`]: async_net::SeededScheduler
//! [`DelayModel::Lockstep`]: async_net::DelayModel::Lockstep

use std::collections::HashMap;

use async_net::{run_async, AsyncConfig, DelayModel, PassiveAsync};
use real_aa::{RealAaConfig, RealAaParty};
use sim_net::{run_simulation, Outcome, Passive, SimConfig};
use tree_aa::{EngineKind, TreeAaConfig, TreeAaParty};
use tree_model::ProjectionTable;

use crate::explore::{execute, Instance};
use crate::lattice::LatticeAssignment;
use crate::props;

/// Extra rounds granted to the sync simulator beyond the public bound
/// before it declares the run stuck (mirrors `aa-fuzz`).
const ROUND_SLACK: u32 = 5;

/// Runs all differential legs on the honest-only version of `instance`
/// (`t = 0`, all `n` parties honest with the given inputs).
///
/// # Errors
///
/// A human-readable description of the first cross-model disagreement
/// or single-model property violation.
pub fn differential(instance: &Instance, depth: usize) -> Result<(), String> {
    let honest = Instance {
        t: 0,
        ..instance.clone()
    };
    let unanimous = honest.inputs.windows(2).all(|w| w[0] == w[1]);
    let no_corruption = LatticeAssignment {
        behaviors: Vec::new(),
    };

    // Leg 1: canonical explored run (empty script = FIFO tail).
    let mut visited = HashMap::new();
    let canonical = execute(&honest, &no_corruption, &[], depth, &mut visited);
    let canonical = canonical
        .result
        .map_err(|e| format!("canonical explored run failed: {e:?}"))?;

    // Leg 2: the production seeded scheduler in lockstep mode.
    let cfg = AsyncConfig {
        n: honest.n,
        t: 0,
        seed: 0,
        delay: DelayModel::Lockstep,
        max_events: honest.max_events,
    };
    let aa_cfg = honest.async_cfg();
    let tree = honest.tree.clone();
    let inputs = honest.inputs.clone();
    let lockstep = run_async(
        cfg,
        |me, _n| async_aa::AsyncTreeAaParty::new(aa_cfg.clone(), tree.clone(), inputs[me.index()]),
        PassiveAsync,
    )
    .map_err(|e| format!("seeded lockstep run failed: {e:?}"))?;

    if canonical.outputs != lockstep.outputs {
        return Err(format!(
            "canonical explored outputs {:?} differ from seeded lockstep outputs {:?}",
            canonical.outputs, lockstep.outputs
        ));
    }

    let async_values: Vec<_> = canonical
        .honest_outputs()
        .into_iter()
        .map(|o| match o {
            Outcome::Value(v) => Ok(v),
            Outcome::Degraded(_) => Err("honest-only async run degraded".to_string()),
        })
        .collect::<Result<_, _>>()?;
    props::check_vertex_outcome(&honest.tree, &honest.inputs, &async_values)
        .map_err(|v| format!("async canonical run: {v}"))?;

    // Leg 3: synchronous tree AA.
    let sync_cfg = TreeAaConfig::new(honest.n, 0, EngineKind::Gradecast, &honest.tree)?;
    let bound = sync_cfg.total_rounds();
    let sim_cfg = SimConfig {
        n: honest.n,
        t: 0,
        max_rounds: bound + 1 + ROUND_SLACK,
    };
    let tree = honest.tree.clone();
    let inputs = honest.inputs.clone();
    let report = run_simulation(
        sim_cfg,
        |me, _n| TreeAaParty::new(me, sync_cfg.clone(), tree.clone(), inputs[me.index()]),
        Passive,
    )
    .map_err(|e| format!("sync tree-aa run failed: {e}"))?;
    props::check_round_bound(report.rounds_executed, bound)
        .map_err(|v| format!("sync tree-aa: {v}"))?;
    let sync_outputs = report.honest_outputs();
    props::check_vertex_outcome(&honest.tree, &honest.inputs, &sync_outputs)
        .map_err(|v| format!("sync tree-aa: {v}"))?;

    if unanimous {
        let want = honest.inputs[0];
        if sync_outputs.iter().any(|&v| v != want) {
            return Err(format!(
                "unanimity: sync outputs {sync_outputs:?} differ from common input {want}"
            ));
        }
        if async_values.iter().any(|&v| v != want) {
            return Err(format!(
                "unanimity: async outputs {async_values:?} differ from common input {want}"
            ));
        }
    }

    // Leg 4: real-valued AA on diameter-path projections (Section 5).
    let dinfo = honest.tree.diameter_info();
    let table = ProjectionTable::new(&honest.tree, &dinfo.path);
    let positions: Vec<f64> = honest
        .inputs
        .iter()
        .map(|&v| table.position(v) as f64)
        .collect();
    let real_cfg = RealAaConfig::new(honest.n, 0, 1.0, dinfo.diameter as f64)?;
    let real_bound = real_cfg.rounds();
    let sim_cfg = SimConfig {
        n: honest.n,
        t: 0,
        max_rounds: real_bound + 1 + ROUND_SLACK,
    };
    let positions_in = positions.clone();
    let report = run_simulation(
        sim_cfg,
        |me, _n| RealAaParty::new(me, real_cfg, positions_in[me.index()]),
        Passive,
    )
    .map_err(|e| format!("real-aa projection run failed: {e}"))?;
    props::check_round_bound(report.rounds_executed, real_bound)
        .map_err(|v| format!("real-aa projection: {v}"))?;
    let real_outputs = report.honest_outputs();
    props::check_real_outcome(&positions, &real_outputs, 1.0)
        .map_err(|v| format!("real-aa projection: {v}"))?;
    if unanimous {
        let want = positions[0];
        if real_outputs
            .iter()
            .any(|&x| (x - want).abs() > props::REAL_TOL)
        {
            return Err(format!(
                "unanimity: real-aa outputs {real_outputs:?} differ from common position {want}"
            ));
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tree_model::{generate, VertexId};

    fn instance(n: usize, vertices: usize, unanimous: bool) -> Instance {
        let tree = Arc::new(generate::path(vertices));
        let vs: Vec<VertexId> = tree.vertices().collect();
        let inputs = (0..n)
            .map(|i| if unanimous { vs[0] } else { vs[i % vs.len()] })
            .collect();
        Instance {
            n,
            t: 0,
            tree,
            inputs,
            max_events: 200_000,
        }
    }

    #[test]
    fn differential_passes_on_split_inputs() {
        differential(&instance(4, 2, false), 2).unwrap();
    }

    #[test]
    fn differential_passes_under_unanimity() {
        differential(&instance(4, 3, true), 2).unwrap();
    }

    #[test]
    fn differential_passes_on_a_star() {
        let tree = Arc::new(generate::star(4));
        let vs: Vec<VertexId> = tree.vertices().collect();
        let instance = Instance {
            n: 4,
            t: 0,
            tree,
            inputs: vec![vs[1], vs[2], vs[3], vs[0]],
            max_events: 200_000,
        };
        differential(&instance, 2).unwrap();
    }
}
