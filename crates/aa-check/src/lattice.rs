//! The finite Byzantine message-lattice abstraction.
//!
//! Exhaustive checking cannot range over all `u32`-valued Byzantine
//! messages, so corrupted parties are restricted to a finite *lattice*
//! of behaviours that covers the adversary classes the proofs care
//! about: total silence, a consistent (possibly off-hull) value, and
//! split-brain equivocation backed by a forged echo. Candidate values
//! are the extremes and the midpoint of the vertex range — the
//! assignments that maximize hull stretch and tie-breaking pressure on
//! small trees.

use async_aa::{AsyncAaMsg, RbcMsg};
use async_net::AsyncAdversary;
use sim_net::{Envelope, PartyId};

/// What one corrupted party does for the whole execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ByzBehavior {
    /// Sends nothing at all (crash-at-start).
    Silent,
    /// Broadcasts the vertex consistently, like an honest party with a
    /// chosen (possibly adversarial) input.
    Consistent(u32),
    /// Sends `Init(a)` to the first half of the honest parties and
    /// `Init(b)` to the rest, plus a forged `Echo(b)` to everyone —
    /// the split-brain attack on reliable broadcast.
    Equivocate(u32, u32),
}

/// One point of the lattice: a behaviour for each corrupted party
/// (corrupted parties are always the last `t` ids).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatticeAssignment {
    /// Behaviours, indexed by corrupted-party order (party `n - t + i`).
    pub behaviors: Vec<ByzBehavior>,
}

impl LatticeAssignment {
    /// Compact human-readable form for reports and counterexamples.
    pub fn describe(&self) -> String {
        if self.behaviors.is_empty() {
            return "no corruption".to_string();
        }
        self.behaviors
            .iter()
            .map(|b| match b {
                ByzBehavior::Silent => "silent".to_string(),
                ByzBehavior::Consistent(v) => format!("consistent({v})"),
                ByzBehavior::Equivocate(a, b) => format!("equivocate({a},{b})"),
            })
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// The candidate vertex values for a tree with `m` vertices: the two
/// extremes and the midpoint (deduplicated on tiny trees).
pub fn candidate_values(m: usize) -> Vec<u32> {
    let hi = (m as u32).saturating_sub(1);
    let mut vals = vec![0, hi, hi / 2];
    vals.sort_unstable();
    vals.dedup();
    vals
}

/// Every lattice assignment for `t` corrupted parties over a tree with
/// `m` vertices — the Cartesian product of per-party behaviours.
///
/// Per party: `Silent`, `Consistent(v)` for each candidate, and
/// `Equivocate(a, b)` for each unordered candidate pair `a < b`.
/// `t = 0` yields the single empty assignment (the honest-only run).
pub fn enumerate_assignments(t: usize, m: usize) -> Vec<LatticeAssignment> {
    let vals = candidate_values(m);
    let mut per_party = vec![ByzBehavior::Silent];
    for &v in &vals {
        per_party.push(ByzBehavior::Consistent(v));
    }
    for (i, &a) in vals.iter().enumerate() {
        for &b in &vals[i + 1..] {
            per_party.push(ByzBehavior::Equivocate(a, b));
        }
    }
    let mut out = vec![LatticeAssignment {
        behaviors: Vec::new(),
    }];
    for _ in 0..t {
        let mut next = Vec::with_capacity(out.len() * per_party.len());
        for assignment in &out {
            for &b in &per_party {
                let mut behaviors = assignment.behaviors.clone();
                behaviors.push(b);
                next.push(LatticeAssignment { behaviors });
            }
        }
        out = next;
    }
    out
}

/// The adversary realizing one [`LatticeAssignment`] against the async
/// tree-AA protocol: all traffic is injected at time 0 (iteration 0
/// reliable-broadcast messages) and the adversary stays passive
/// afterwards, leaving schedule exploration to the scheduler.
#[derive(Clone, Debug)]
pub struct LatticeAdversary {
    n: usize,
    assignment: LatticeAssignment,
}

impl LatticeAdversary {
    /// Adversary for `assignment` in an `n`-party network (corrupting
    /// the last `assignment.behaviors.len()` parties).
    pub fn new(n: usize, assignment: LatticeAssignment) -> Self {
        assert!(assignment.behaviors.len() < n, "cannot corrupt everyone");
        LatticeAdversary { n, assignment }
    }

    fn honest_count(&self) -> usize {
        self.n - self.assignment.behaviors.len()
    }
}

impl AsyncAdversary<AsyncAaMsg> for LatticeAdversary {
    fn corrupted(&self) -> Vec<PartyId> {
        (self.honest_count()..self.n).map(PartyId).collect()
    }

    fn on_start(&mut self, sends: &mut Vec<(PartyId, PartyId, AsyncAaMsg)>) {
        let honest = self.honest_count();
        let rbc = |me: PartyId, inner: RbcMsg<u32>| AsyncAaMsg::Rbc {
            iter: 0,
            broadcaster: me,
            inner,
        };
        for (i, behavior) in self.assignment.behaviors.iter().enumerate() {
            let me = PartyId(honest + i);
            match *behavior {
                ByzBehavior::Silent => {}
                ByzBehavior::Consistent(v) => {
                    for to in 0..honest {
                        sends.push((me, PartyId(to), rbc(me, RbcMsg::Init(v))));
                    }
                }
                ByzBehavior::Equivocate(a, b) => {
                    for to in 0..honest {
                        let v = if to < honest / 2 { a } else { b };
                        sends.push((me, PartyId(to), rbc(me, RbcMsg::Init(v))));
                        sends.push((me, PartyId(to), rbc(me, RbcMsg::Echo(b))));
                    }
                }
            }
        }
    }

    fn on_deliver(
        &mut self,
        _env: &Envelope<AsyncAaMsg>,
        _sends: &mut Vec<(PartyId, PartyId, AsyncAaMsg)>,
    ) {
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidates_deduplicate_on_tiny_trees() {
        assert_eq!(candidate_values(1), vec![0]);
        assert_eq!(candidate_values(2), vec![0, 1]);
        assert_eq!(candidate_values(4), vec![0, 1, 3]);
        assert_eq!(candidate_values(7), vec![0, 3, 6]);
    }

    #[test]
    fn enumeration_counts_match_the_lattice_size() {
        // t = 0: the single honest-only assignment.
        assert_eq!(enumerate_assignments(0, 7).len(), 1);
        // 3 candidates: 1 silent + 3 consistent + 3 pairs = 7 per party.
        assert_eq!(enumerate_assignments(1, 7).len(), 7);
        assert_eq!(enumerate_assignments(2, 7).len(), 49);
        // 2 candidates (path2): 1 + 2 + 1 = 4 per party.
        assert_eq!(enumerate_assignments(1, 2).len(), 4);
    }

    #[test]
    fn adversary_realizes_each_behavior() {
        let mut sends = Vec::new();
        let mut adv = LatticeAdversary::new(
            4,
            LatticeAssignment {
                behaviors: vec![ByzBehavior::Silent],
            },
        );
        assert_eq!(adv.corrupted(), vec![PartyId(3)]);
        adv.on_start(&mut sends);
        assert!(sends.is_empty());

        let mut adv = LatticeAdversary::new(
            4,
            LatticeAssignment {
                behaviors: vec![ByzBehavior::Consistent(2)],
            },
        );
        adv.on_start(&mut sends);
        assert_eq!(sends.len(), 3); // one Init per honest party
        assert!(sends.iter().all(|(from, _, m)| {
            *from == PartyId(3)
                && matches!(
                    m,
                    AsyncAaMsg::Rbc {
                        iter: 0,
                        inner: RbcMsg::Init(2),
                        ..
                    }
                )
        }));

        sends.clear();
        let mut adv = LatticeAdversary::new(
            4,
            LatticeAssignment {
                behaviors: vec![ByzBehavior::Equivocate(0, 2)],
            },
        );
        adv.on_start(&mut sends);
        // 3 honest parties × (Init + Echo).
        assert_eq!(sends.len(), 6);
        let inits_a = sends
            .iter()
            .filter(|(_, _, m)| {
                matches!(
                    m,
                    AsyncAaMsg::Rbc {
                        inner: RbcMsg::Init(0),
                        ..
                    }
                )
            })
            .count();
        let inits_b = sends
            .iter()
            .filter(|(_, _, m)| {
                matches!(
                    m,
                    AsyncAaMsg::Rbc {
                        inner: RbcMsg::Init(2),
                        ..
                    }
                )
            })
            .count();
        assert_eq!((inits_a, inits_b), (1, 2)); // split at honest/2 = 1
    }
}
