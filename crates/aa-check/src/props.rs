//! The paper's machine-checkable properties as shared predicates.
//!
//! These are the single source of truth for the guarantees checked across
//! the workspace: the fuzz harness (`aa-fuzz`), the exhaustive checker
//! (this crate), and the cross-crate integration tests all call the same
//! functions, so a predicate cannot silently drift between the sampling
//! and the enumerating test stacks.

use std::fmt;

use sim_net::{Outcome, PartyId};
use tree_aa::{check_tree_aa, Violation};
use tree_model::{Tree, VertexId};

/// Slack for floating-point comparisons in the real-valued checks.
pub const REAL_TOL: f64 = 1e-9;

/// A violated protocol property.
#[derive(Clone, Debug, PartialEq)]
pub enum PropViolation {
    /// The run exceeded the protocol's public round (or termination)
    /// bound.
    RoundBound {
        /// Rounds (or bound units) the run actually consumed.
        executed: u32,
        /// The public bound (excluding the terminal processing round).
        bound: u32,
    },
    /// An honest output escaped the honest inputs' convex hull (interval,
    /// for real-valued AA).
    Validity(String),
    /// Honest outputs are farther apart than the agreement tolerance.
    Agreement(String),
    /// A degraded outcome without a checkable over-budget certificate.
    Degradation(String),
}

impl fmt::Display for PropViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropViolation::RoundBound { executed, bound } => write!(
                f,
                "round bound violated: executed {executed} rounds, bound {bound} (+1 terminal)"
            ),
            PropViolation::Validity(detail) => write!(f, "validity violated: {detail}"),
            PropViolation::Agreement(detail) => write!(f, "agreement violated: {detail}"),
            PropViolation::Degradation(detail) => {
                write!(f, "degradation contract violated: {detail}")
            }
        }
    }
}

impl std::error::Error for PropViolation {}

/// The round bound, with the `+1` terminal processing round in which
/// parties consume the last messages and output.
///
/// # Errors
///
/// [`PropViolation::RoundBound`] if `executed > bound + 1`.
pub fn check_round_bound(executed: u32, bound: u32) -> Result<(), PropViolation> {
    if executed > bound + 1 {
        return Err(PropViolation::RoundBound { executed, bound });
    }
    Ok(())
}

/// Validity and 1-agreement for vertex-valued protocols (Definition 2),
/// splitting [`check_tree_aa`]'s verdict into the right property.
///
/// # Errors
///
/// [`PropViolation::Validity`] for hull escapes, [`PropViolation::Agreement`]
/// for outputs more than distance 1 apart.
pub fn check_vertex_outcome(
    tree: &Tree,
    honest_inputs: &[VertexId],
    honest_outputs: &[VertexId],
) -> Result<(), PropViolation> {
    check_tree_aa(tree, honest_inputs, honest_outputs).map_err(|v| match v {
        Violation::OutsideHull { .. } => PropViolation::Validity(v.to_string()),
        Violation::TooFar { .. } => PropViolation::Agreement(v.to_string()),
        other => PropViolation::Validity(other.to_string()),
    })
}

/// Interval validity and ε-agreement for real-valued AA, with
/// [`REAL_TOL`] slack.
///
/// # Errors
///
/// [`PropViolation::Validity`] for outputs outside the honest input
/// interval, [`PropViolation::Agreement`] for spread beyond `eps`.
pub fn check_real_outcome(
    honest_inputs: &[f64],
    honest_outputs: &[f64],
    eps: f64,
) -> Result<(), PropViolation> {
    let lo = honest_inputs.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = honest_inputs
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    for &o in honest_outputs {
        if o < lo - REAL_TOL || o > hi + REAL_TOL {
            return Err(PropViolation::Validity(format!(
                "output {o} outside honest input interval [{lo}, {hi}]"
            )));
        }
    }
    let out_lo = honest_outputs.iter().copied().fold(f64::INFINITY, f64::min);
    let out_hi = honest_outputs
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    if out_hi - out_lo > eps + REAL_TOL {
        return Err(PropViolation::Agreement(format!(
            "output spread {} exceeds epsilon {eps}",
            out_hi - out_lo
        )));
    }
    Ok(())
}

/// The honest parties' decided values, in party order.
///
/// # Panics
///
/// Panics if an honest (non-corrupted) slot is `None` — on a successful
/// run every honest party has decided.
pub fn honest_outputs<O: Clone>(outputs: &[Option<O>], corrupted: &[bool]) -> Vec<O> {
    outputs
        .iter()
        .zip(corrupted)
        .filter(|(_, &corrupted)| !corrupted)
        .map(|(o, _)| o.clone().expect("honest party finished without output"))
        .collect()
}

/// The values of the parties *not* in `byz`, in party order — the
/// honest-input filter used wherever a known corrupted set is compared
/// against the full input vector.
pub fn honest_subset<T: Clone>(values: &[T], byz: &[PartyId]) -> Vec<T> {
    values
        .iter()
        .enumerate()
        .filter(|(i, _)| !byz.iter().any(|b| b.index() == *i))
        .map(|(_, v)| v.clone())
        .collect()
}

/// The degradation contract on a single outcome: a party may refuse full
/// guarantees only with a non-empty certificate that actually
/// demonstrates an over-budget fault set.
///
/// # Errors
///
/// [`PropViolation::Degradation`] naming the offending party.
pub fn check_degradation_outcome<O>(
    party: usize,
    outcome: &Outcome<O>,
) -> Result<(), PropViolation> {
    if let Outcome::Degraded(d) = outcome {
        if d.certificate.evidence.is_empty() || !d.certificate.exceeds_budget() {
            return Err(PropViolation::Degradation(format!(
                "party {party} degraded with a certificate that does not demonstrate an \
                 over-budget fault set ({} observed, budget t = {})",
                d.certificate.observed, d.certificate.budget
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_net::{Degradation, Evidence, EvidenceCertificate};
    use tree_model::generate;

    #[test]
    fn round_bound_allows_the_terminal_round() {
        check_round_bound(5, 4).unwrap();
        let err = check_round_bound(6, 4).unwrap_err();
        assert_eq!(
            err,
            PropViolation::RoundBound {
                executed: 6,
                bound: 4
            }
        );
        assert!(err.to_string().contains("bound 4"));
    }

    #[test]
    fn vertex_outcome_splits_validity_and_agreement() {
        let t = generate::path(9);
        let vs: Vec<VertexId> = t.vertices().collect();
        // Inputs span [2, 4]; an output at 8 escapes the hull.
        let err = check_vertex_outcome(&t, &[vs[2], vs[4]], &[vs[3], vs[8]]).unwrap_err();
        assert!(matches!(err, PropViolation::Validity(_)), "{err}");
        // Outputs 2 and 4 are both in the hull but 2 apart.
        let err = check_vertex_outcome(&t, &[vs[2], vs[4]], &[vs[2], vs[4]]).unwrap_err();
        assert!(matches!(err, PropViolation::Agreement(_)), "{err}");
        check_vertex_outcome(&t, &[vs[2], vs[4]], &[vs[3], vs[3]]).unwrap();
    }

    #[test]
    fn real_outcome_checks_interval_and_spread() {
        check_real_outcome(&[0.0, 4.0], &[1.0, 1.5], 1.0).unwrap();
        let err = check_real_outcome(&[0.0, 4.0], &[5.0], 1.0).unwrap_err();
        assert!(matches!(err, PropViolation::Validity(_)), "{err}");
        let err = check_real_outcome(&[0.0, 4.0], &[0.5, 3.5], 1.0).unwrap_err();
        assert!(matches!(err, PropViolation::Agreement(_)), "{err}");
    }

    #[test]
    fn honest_filters_drop_exactly_the_corrupted() {
        let outs = vec![Some(10), None, Some(30)];
        assert_eq!(honest_outputs(&outs, &[false, true, false]), vec![10, 30]);
        assert_eq!(honest_subset(&[10, 20, 30], &[PartyId(1)]), vec![10, 30]);
    }

    #[test]
    fn degradation_contract_requires_an_over_budget_certificate() {
        check_degradation_outcome(0, &Outcome::Value(7u32)).unwrap();
        let good = Outcome::Degraded(Degradation {
            fallback: 7u32,
            certificate: EvidenceCertificate::new(
                vec![
                    Evidence::Silence { party: 1, round: 2 },
                    Evidence::Silence { party: 2, round: 2 },
                ],
                1,
            ),
        });
        check_degradation_outcome(0, &good).unwrap();
        let bad = Outcome::Degraded(Degradation {
            fallback: 7u32,
            certificate: EvidenceCertificate::new(vec![], 1),
        });
        let err = check_degradation_outcome(3, &bad).unwrap_err();
        assert!(err.to_string().contains("party 3"), "{err}");
    }
}
