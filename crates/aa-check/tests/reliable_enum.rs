//! The `Reliable` sublayer under exhaustively enumerated schedules.
//!
//! The in-crate `async-net` tests cover the reliable sublayer under
//! *sampled* fault schedules; here the enumerating scheduler drives it
//! through **every** delivery order up to a decision depth, with every
//! send duplicated at the link layer (`duplicate_sends`), asserting on
//! each explored schedule that
//!
//! * duplicate deliveries are filtered before the inner protocol
//!   (exactly-once semantics survive adversarial reordering), and
//! * the 63-bit sequence space wraps below `RETRANSMIT_BIT` without
//!   colliding acks or retransmit timers, even when the counter starts
//!   at the wrap boundary.

use std::collections::{BTreeSet, HashMap};

use aa_check::sched::EnumeratingScheduler;
use async_net::{
    run_async_with, AsyncConfig, AsyncCtx, AsyncProtocol, DelayModel, PassiveAsync, Reliable,
    RETRANSMIT_BIT,
};
use sim_net::Envelope;

/// Outputs the total inner deliveries once every sender has been heard.
/// If the reliable layer ever leaked a duplicate to the inner protocol
/// before completion, `total` would exceed the number of distinct
/// senders at decision time.
#[derive(Debug)]
struct CountDistinct {
    n: usize,
    total: usize,
    distinct: BTreeSet<usize>,
}

impl CountDistinct {
    fn new(n: usize) -> Self {
        CountDistinct {
            n,
            total: 0,
            distinct: BTreeSet::new(),
        }
    }
}

impl AsyncProtocol for CountDistinct {
    type Msg = u64;
    type Output = usize;

    fn on_start(&mut self, ctx: &mut AsyncCtx<u64>) {
        ctx.broadcast(ctx.me().index() as u64);
    }

    fn on_message(&mut self, env: Envelope<u64>, _ctx: &mut AsyncCtx<u64>) {
        self.total += 1;
        self.distinct.insert(env.from.index());
    }

    fn output(&self) -> Option<usize> {
        (self.distinct.len() >= self.n).then_some(self.total)
    }
}

/// Runs every schedule of `n` parties of [`Reliable<CountDistinct>`] up
/// to `depth` enumerated decisions with link-level duplication of every
/// send, asserting exactly-once inner delivery on each; returns
/// `(executions, completed)`.
fn explore_reliable(n: usize, depth: usize, first_seq: u64, max_runs: usize) -> (usize, usize) {
    let cfg = AsyncConfig {
        n,
        t: 0,
        seed: 0,
        delay: DelayModel::Lockstep,
        max_events: 100_000,
    };
    let mut script: Vec<usize> = Vec::new();
    let mut executions = 0;
    let mut completed = 0;
    loop {
        executions += 1;
        assert!(
            executions <= max_runs,
            "exploration did not finish within {max_runs} runs"
        );
        // Fresh visited map per run: run_async_with performs no state
        // observations, so only sleep-set pruning is active here.
        let mut visited = HashMap::new();
        let mut sched = EnumeratingScheduler::new(depth, &script, &mut visited);
        sched.duplicate_sends = true;
        let result = run_async_with(
            &cfg,
            None,
            |_, _| Reliable::with_initial_seq(CountDistinct::new(n), n, first_seq),
            PassiveAsync,
            &mut sched,
        );
        let pruned = sched.pruned_by_sleep;
        match result {
            Ok(report) => {
                completed += 1;
                assert_eq!(
                    report.outputs,
                    vec![Some(n); n],
                    "a schedule leaked a duplicate into the inner protocol \
                     (script {script:?}, first_seq {first_seq:#x})"
                );
                assert!(
                    report.metrics.fault_dups > 0,
                    "link duplication was active on every run"
                );
            }
            Err(e) => assert!(
                pruned,
                "non-pruned schedule failed (script {script:?}): {e:?}"
            ),
        }
        let next = (0..sched.taken.len())
            .rev()
            .find(|&k| sched.taken[k] + 1 < sched.branching[k]);
        match next {
            Some(k) => {
                script = sched.taken[..k].to_vec();
                script.push(sched.taken[k] + 1);
            }
            None => break,
        }
    }
    (executions, completed)
}

#[test]
fn duplicates_are_deduped_on_every_enumerated_schedule() {
    let (executions, completed) = explore_reliable(3, 3, 0, 100_000);
    assert!(executions > 1, "the schedule tree must branch");
    assert!(completed >= 1);
}

#[test]
fn wraparound_seqs_survive_every_enumerated_schedule() {
    // The sender-side counter starts two frames below the wrap boundary,
    // so the first broadcast spans {2^63-2, 2^63-1, 0}: acks and
    // retransmit tokens for wrapped and unwrapped seqs coexist in every
    // explored delivery order.
    let (executions, completed) = explore_reliable(3, 3, RETRANSMIT_BIT - 2, 100_000);
    assert!(executions > 1);
    assert!(completed >= 1);
}

#[test]
fn exploration_counts_are_deterministic() {
    let a = explore_reliable(3, 2, RETRANSMIT_BIT - 2, 100_000);
    let b = explore_reliable(3, 2, RETRANSMIT_BIT - 2, 100_000);
    assert_eq!(a, b);
}

#[test]
fn duplicate_ack_floods_cannot_unstick_the_wrap_counter() {
    // Direct (non-enumerated) check of the ack path at the wrap
    // boundary, mirroring the in-crate duplicate-ack test but through
    // the public constructor: redundant acks for a wrapped seq are
    // idempotent across every delivery interleaving of the first hop.
    let cfg = AsyncConfig {
        n: 2,
        t: 0,
        seed: 0,
        delay: DelayModel::Lockstep,
        max_events: 50_000,
    };
    let mut script: Vec<usize> = Vec::new();
    let mut runs = 0;
    loop {
        runs += 1;
        assert!(runs <= 10_000);
        let mut visited = HashMap::new();
        let mut sched = EnumeratingScheduler::new(4, &script, &mut visited);
        sched.duplicate_sends = true; // every Data *and every Ack* doubled
        let result = run_async_with(
            &cfg,
            None,
            |_, _| Reliable::with_initial_seq(CountDistinct::new(2), 2, RETRANSMIT_BIT - 1),
            PassiveAsync,
            &mut sched,
        );
        match result {
            Ok(report) => assert_eq!(report.outputs, vec![Some(2); 2]),
            Err(e) => assert!(sched.pruned_by_sleep, "{e:?}"),
        }
        let next = (0..sched.taken.len())
            .rev()
            .find(|&k| sched.taken[k] + 1 < sched.branching[k]);
        match next {
            Some(k) => {
                script = sched.taken[..k].to_vec();
                script.push(sched.taken[k] + 1);
            }
            None => break,
        }
    }
    assert!(runs > 1);
}
