//! The optimal Byzantine budget partition: `sup Π tᵢ` under `Σ tᵢ ≤ t`
//! with at most `r` parts.

/// Returns a maximizing partition of budget `t` into at most `r` positive
/// natural parts (the supremum of `Π tᵢ` in Theorem 1). For a fixed part
/// count the maximum is the near-equal split; the part count itself is
/// optimized over `1..=min(r, t)`.
///
/// Returns an empty vector when `t == 0` or `r == 0` (the product is then
/// the empty product, but Fekete's chain has no Byzantine steps — callers
/// treat this as "bound degenerates to Ω(1)").
///
/// # Example
///
/// ```
/// use lower_bound::max_product_partition;
///
/// assert_eq!(max_product_partition(6, 2), vec![3, 3]);
/// // With more rounds available, 3·3 beats 2·2·2; parts of size ~3 win.
/// assert_eq!(max_product_partition(6, 6), vec![3, 3]);
/// assert_eq!(max_product_partition(4, 1), vec![4]);
/// ```
pub fn max_product_partition(t: usize, r: usize) -> Vec<usize> {
    if t == 0 || r == 0 {
        return Vec::new();
    }
    let mut best: Vec<usize> = vec![t]; // one part
    let mut best_log = (t as f64).log2();
    for parts in 2..=r.min(t) {
        let q = t / parts;
        let s = t % parts;
        // s parts of (q+1), parts-s parts of q.
        let log = s as f64 * ((q + 1) as f64).log2() + (parts - s) as f64 * (q as f64).log2();
        if log > best_log {
            best_log = log;
            best = std::iter::repeat_n(q + 1, s)
                .chain(std::iter::repeat_n(q, parts - s))
                .collect();
        }
    }
    best
}

/// `log₂ sup Π tᵢ` for budget `t` and at most `r` parts; `0.0` for the
/// degenerate cases (empty product).
pub fn log2_max_product(t: usize, r: usize) -> f64 {
    max_product_partition(t, r)
        .iter()
        .map(|&p| (p as f64).log2())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force maximum over all partitions with sum <= t and <= r
    /// positive parts.
    fn brute(t: usize, r: usize) -> f64 {
        fn rec(remaining: usize, parts_left: usize, min_part: usize, acc: f64, best: &mut f64) {
            if acc > *best {
                *best = acc;
            }
            if parts_left == 0 {
                return;
            }
            for p in min_part..=remaining {
                rec(remaining - p, parts_left - 1, p, acc * p as f64, best);
            }
        }
        let mut best = 0.0;
        rec(t, r, 1, 1.0, &mut best);
        best
    }

    #[test]
    fn matches_bruteforce_on_small_instances() {
        for t in 1..=12 {
            for r in 1..=8 {
                let ours: f64 = max_product_partition(t, r)
                    .iter()
                    .map(|&p| p as f64)
                    .product();
                let exact = brute(t, r);
                assert_eq!(ours, exact, "t = {t}, r = {r}");
            }
        }
    }

    #[test]
    fn partition_respects_constraints() {
        for t in 1..=20 {
            for r in 1..=10 {
                let p = max_product_partition(t, r);
                assert!(p.len() <= r);
                assert!(p.iter().sum::<usize>() <= t);
                assert!(p.iter().all(|&x| x >= 1));
            }
        }
    }

    #[test]
    fn degenerate_cases() {
        assert!(max_product_partition(0, 5).is_empty());
        assert!(max_product_partition(5, 0).is_empty());
        assert_eq!(log2_max_product(0, 5), 0.0);
    }

    #[test]
    fn log_agrees_with_product() {
        let p = max_product_partition(10, 4);
        let prod: f64 = p.iter().map(|&x| x as f64).product();
        assert!((log2_max_product(10, 4) - prod.log2()).abs() < 1e-12);
    }

    #[test]
    fn prefers_parts_of_about_three() {
        // Classic integer-break behaviour once r is unconstrained.
        let p = max_product_partition(9, 9);
        assert_eq!(p, vec![3, 3, 3]);
        let p = max_product_partition(10, 10);
        let prod: usize = p.iter().product();
        assert_eq!(prod, 36); // 3*3*4 or 3*3*2*2 -> 36
    }
}
