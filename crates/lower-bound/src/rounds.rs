//! Round lower bounds for 1-agreement on trees (Theorem 2).

use crate::fekete::log2_fekete_k;

/// The *exact* round lower bound induced by Corollary 1: the least `R`
/// with `K(R, D) ≤ 1`. Any deterministic protocol achieving 1-Agreement
/// on a tree of diameter `d` with `n` parties and `t` Byzantine needs at
/// least this many rounds.
///
/// Returns 1 when `t == 0` or `d ≤ 1` (every protocol still needs `Ω(1)`
/// rounds; a 0-diameter instance is trivial but the bound statement keeps
/// the constant floor).
///
/// # Panics
///
/// Panics if `d` is negative/non-finite, or if no `R ≤ 10⁶` satisfies the
/// bound (impossible for sane parameters: `K` decays geometrically once
/// `R > t`).
pub fn round_lower_bound(d: f64, n: usize, t: usize) -> u32 {
    assert!(
        d.is_finite() && d >= 0.0,
        "diameter must be finite and >= 0"
    );
    if t == 0 || d <= 1.0 {
        return 1;
    }
    for r in 1..=1_000_000 {
        if log2_fekete_k(r, d, n, t) <= 0.0 {
            return r;
        }
    }
    panic!("round lower bound did not converge for d = {d}, n = {n}, t = {t}");
}

/// The paper's closed-form Theorem 2 expression
/// `log₂ D / (log₂ log₂ D + log₂((n + t)/t))`, floored at 1. This is the
/// asymptotic Ω(·) — use [`round_lower_bound`] for the exact bound.
///
/// # Panics
///
/// Panics if `d` is negative/non-finite or `n == 0`.
pub fn theorem2_formula(d: f64, n: usize, t: usize) -> f64 {
    assert!(
        d.is_finite() && d >= 0.0,
        "diameter must be finite and >= 0"
    );
    assert!(n > 0, "n must be positive");
    if t == 0 || d < 4.0 {
        return 1.0;
    }
    let lg = d.log2();
    let denom = lg.log2() + (((n + t) as f64) / t as f64).log2();
    (lg / denom).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fekete::fekete_k;

    #[test]
    fn exact_bound_is_tightest_violation_point() {
        let (d, n, t) = (1e4, 10, 3);
        let r = round_lower_bound(d, n, t);
        assert!(fekete_k(r, d, n, t) <= 1.0);
        if r > 1 {
            assert!(fekete_k(r - 1, d, n, t) > 1.0);
        }
    }

    #[test]
    fn grows_with_diameter() {
        let mut prev = 0;
        for exp in [2.0f64, 4.0, 8.0, 16.0, 24.0] {
            let r = round_lower_bound(2f64.powf(exp), 10, 3);
            assert!(r >= prev);
            prev = r;
        }
        assert!(prev >= 3, "large diameters need several rounds, got {prev}");
    }

    #[test]
    fn degenerate_cases_floor_at_one() {
        assert_eq!(round_lower_bound(0.0, 4, 1), 1);
        assert_eq!(round_lower_bound(100.0, 4, 0), 1);
        assert_eq!(theorem2_formula(2.0, 4, 1), 1.0);
        assert_eq!(theorem2_formula(100.0, 4, 0), 1.0);
    }

    #[test]
    fn formula_tracks_exact_bound_asymptotically() {
        // The closed form is a lower bound on the shape: the exact bound
        // should stay within a small constant factor above it for
        // t = Θ(n).
        for exp in [10.0f64, 20.0, 40.0, 80.0] {
            let d = 2f64.powf(exp);
            let (n, t) = (31, 10);
            let exact = round_lower_bound(d, n, t) as f64;
            let formula = theorem2_formula(d, n, t);
            assert!(
                exact >= formula * 0.5,
                "exact {exact} far below formula {formula}"
            );
            assert!(
                exact <= formula * 6.0,
                "exact {exact} far above formula {formula}"
            );
        }
    }

    #[test]
    fn more_byzantine_means_higher_bound() {
        let d = 1e6;
        let few = round_lower_bound(d, 40, 2);
        let many = round_lower_bound(d, 40, 13);
        assert!(many >= few);
    }
}
