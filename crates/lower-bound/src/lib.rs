//! Fekete-style lower bounds for synchronous approximate agreement, on
//! real values and on trees (Section 3 of the paper).
//!
//! Theorem 1 (Fekete 1990, as restated by the paper): every deterministic
//! `R`-round protocol with Validity and Termination admits an execution in
//! which two honest outputs are at least
//!
//! ```text
//! K(R, D) = D · sup{ t₁·…·t_R : tᵢ ∈ ℕ, t₁+…+t_R ≤ t } / (n + t)^R
//!         ≥ D · t^R / (R^R · (n + t)^R)
//! ```
//!
//! apart. Corollary 1 transfers this verbatim to trees with `D = D(T)`,
//! and Theorem 2 turns it into the round lower bound
//! `Ω(log D / (log log D + log((n+t)/t)))`.
//!
//! This crate computes these quantities exactly (in log-space where
//! magnitudes explode): the optimal budget partition
//! ([`max_product_partition`]), `K(R, D)` ([`fekete_k`], [`log2_fekete_k`]),
//! the exact minimal round count forced by `K` ([`round_lower_bound`]) and
//! the paper's closed-form asymptotic ([`theorem2_formula`]).
//!
//! # Example
//!
//! ```
//! use lower_bound::{fekete_k, round_lower_bound};
//!
//! // 31 parties, 10 Byzantine, tree diameter 1000:
//! let lb = round_lower_bound(1000.0, 31, 10);
//! assert!(lb >= 2);
//! // One round cannot reach 1-agreement:
//! assert!(fekete_k(1, 1000.0, 31, 10) > 1.0);
//! ```

#![warn(missing_docs)]
mod fekete;
mod partition;
mod rounds;

pub use fekete::{fekete_k, log2_fekete_k};
pub use partition::{log2_max_product, max_product_partition};
pub use rounds::{round_lower_bound, theorem2_formula};
