//! The quantity `K(R, D)` of Theorem 1 / Corollary 1.

use crate::partition::log2_max_product;

/// `log₂ K(R, D)` for `n` parties with `t` Byzantine:
/// `log₂ D + log₂ sup Π tᵢ − R·log₂(n + t)`.
///
/// Computed in log-space because `(n + t)^R` overflows `f64` for the
/// parameter sweeps the experiments run.
///
/// Returns `f64::NEG_INFINITY` when `t == 0` or `D == 0` (no Byzantine
/// steps: the chain argument forces nothing).
///
/// # Panics
///
/// Panics if `d` is negative or non-finite, or `r == 0`.
pub fn log2_fekete_k(r: u32, d: f64, n: usize, t: usize) -> f64 {
    assert!(
        d.is_finite() && d >= 0.0,
        "diameter must be finite and >= 0"
    );
    assert!(r >= 1, "at least one round");
    if t == 0 || d == 0.0 {
        return f64::NEG_INFINITY;
    }
    d.log2() + log2_max_product(t, r as usize) - r as f64 * ((n + t) as f64).log2()
}

/// `K(R, D)` itself (may underflow to 0 for large `R`; use
/// [`log2_fekete_k`] for reporting).
///
/// # Panics
///
/// As [`log2_fekete_k`].
pub fn fekete_k(r: u32, d: f64, n: usize, t: usize) -> f64 {
    let l = log2_fekete_k(r, d, n, t);
    if l == f64::NEG_INFINITY {
        0.0
    } else {
        l.exp2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_direct_computation_for_small_params() {
        // n = 4, t = 1, R = 2, D = 100: sup prod = 1 (budget 1),
        // K = 100 / 25 = 4.
        let k = fekete_k(2, 100.0, 4, 1);
        assert!((k - 4.0).abs() < 1e-9, "{k}");
    }

    #[test]
    fn decreasing_in_rounds_eventually() {
        let mut prev = f64::INFINITY;
        for r in 1..=20 {
            let k = fekete_k(r, 1e6, 10, 3);
            assert!(k <= prev + 1e-9, "K must be non-increasing in R here");
            prev = k;
        }
    }

    #[test]
    fn lower_bound_form_is_dominated() {
        // The closed form D·t^R/(R^R(n+t)^R) never exceeds the exact K
        // when R divides t (the equal split is then integral; for R ∤ t
        // the paper's closed form overshoots the natural-number supremum
        // slightly, a standard asymptotic abuse it acknowledges).
        for r in 1..=10u32 {
            for t in (1..=30usize).filter(|t| t % r as usize == 0) {
                let n = 3 * t + 1;
                let d: f64 = 1e5;
                let closed = d.log2() + r as f64 * (t as f64).log2()
                    - r as f64 * (r as f64).log2()
                    - r as f64 * ((n + t) as f64).log2();
                let exact = log2_fekete_k(r, d, n, t);
                assert!(exact >= closed - 1e-9, "r={r}, t={t}");
            }
        }
    }

    #[test]
    fn zero_byzantine_forces_nothing() {
        assert_eq!(fekete_k(3, 100.0, 4, 0), 0.0);
        assert_eq!(log2_fekete_k(3, 100.0, 4, 0), f64::NEG_INFINITY);
    }

    #[test]
    fn scales_linearly_in_d() {
        let a = fekete_k(3, 100.0, 7, 2);
        let b = fekete_k(3, 200.0, 7, 2);
        assert!((b / a - 2.0).abs() < 1e-9);
    }
}
