//! End-to-end tests of the fuzzing harness: batch determinism, a smoke
//! sweep over the generated case stream, and the full
//! find → minimize → persist → replay loop.

use std::fs;

use aa_fuzz::{
    gen_case, minimize, replay_corpus, run_batch, run_case, run_case_mutated, save_case, FuzzCase,
    FuzzOptions, Json, Mutation,
};

/// A smoke sweep: the first 60 cases of the default seed all satisfy
/// every invariant (determinism, round bound, validity, agreement).
#[test]
fn smoke_sweep_finds_no_violations() {
    for index in 0..60 {
        let case = gen_case(42, index);
        run_case(&case).unwrap_or_else(|e| panic!("case {index} ({}) failed: {e}", case.to_json()));
    }
}

/// Two identical batches produce bit-identical reports — the contract
/// behind `cli fuzz --seed` reproducibility.
#[test]
fn batches_are_bit_identical() {
    let opts = FuzzOptions {
        seed: 7,
        cases: 40,
        minimize: false,
        faults: false,
        corpus_dir: None,
    };
    let mut first = Vec::new();
    let mut second = Vec::new();
    let violations_a = run_batch(&opts, &mut first).unwrap();
    let violations_b = run_batch(&opts, &mut second).unwrap();
    assert_eq!(violations_a, violations_b);
    assert_eq!(first, second);
    assert_eq!(violations_a, 0, "{}", String::from_utf8_lossy(&first));
}

/// A faulted batch is clean, bit-identical across runs, and differs from
/// the fault-free report only by the overlaid fault plans.
#[test]
fn faulted_batches_are_clean_and_bit_identical() {
    let opts = FuzzOptions {
        seed: 7,
        cases: 25,
        minimize: false,
        faults: true,
        corpus_dir: None,
    };
    let mut first = Vec::new();
    let mut second = Vec::new();
    let violations_a = run_batch(&opts, &mut first).unwrap();
    let violations_b = run_batch(&opts, &mut second).unwrap();
    assert_eq!(violations_a, violations_b);
    assert_eq!(first, second);
    assert_eq!(violations_a, 0, "{}", String::from_utf8_lossy(&first));
}

/// Generated cases survive a JSON round trip exactly.
#[test]
fn generated_cases_roundtrip_through_json() {
    for index in 0..100 {
        let case = gen_case(13, index);
        let text = case.to_json().to_string();
        let back = FuzzCase::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, case);
    }
}

/// The acceptance-criteria loop: inject a validity bug (mutation), let
/// the fuzzer catch it, minimize it to a tiny repro, persist it, and
/// replay it from disk.
#[test]
fn injected_bug_is_caught_minimized_and_persisted() {
    // Find the first generated case the mutation breaks.
    let (index, case) = (0..200)
        .map(|i| (i, gen_case(99, i)))
        .find(|(_, c)| run_case_mutated(c, Mutation::SkewFirstOutput).is_err())
        .expect("the planted validity bug must be caught within 200 cases");

    let minimized = minimize(&case, Mutation::SkewFirstOutput, 500);
    let vertex_count = minimized.case.tree.build().vertex_count();
    assert!(
        vertex_count <= 8,
        "case {index} minimized to {vertex_count} vertices, want <= 8"
    );

    // Persist the repro, then replay it from disk. The un-mutated
    // protocol is correct, so corpus replay must pass — the corpus
    // records bugs that have since been fixed.
    let dir = std::env::temp_dir().join("aa-fuzz-harness-corpus");
    let _ = fs::remove_dir_all(&dir);
    save_case(&dir, &minimized.case, &minimized.failure.to_string()).unwrap();
    assert_eq!(replay_corpus(&dir), Ok(1));
    let _ = fs::remove_dir_all(&dir);
}

/// Replay reports still-failing corpus entries instead of silently
/// accepting them.
#[test]
fn replay_rejects_a_case_that_violates_invariants() {
    // An impossible round bound cannot be stored (validate would pass but
    // the case is honest), so exercise the error path with a case whose
    // inputs make the baseline trivially pass, then tamper with the file
    // to an unknown protocol name — load must fail loudly.
    let dir = std::env::temp_dir().join("aa-fuzz-harness-bad-corpus");
    let _ = fs::remove_dir_all(&dir);
    let case = gen_case(1, 0);
    let path = save_case(&dir, &case, "ok").unwrap();
    let tampered = fs::read_to_string(&path)
        .unwrap()
        .replace(case.protocol.name(), "no-such-protocol");
    fs::write(&path, tampered).unwrap();
    assert!(replay_corpus(&dir).is_err());
    let _ = fs::remove_dir_all(&dir);
}
