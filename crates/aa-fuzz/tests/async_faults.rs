//! End-to-end acceptance tests of the fault-injection layer on the
//! asynchronous stack — the async half of the degradation contract the
//! lockstep fuzzer checks via `--faults`:
//!
//! * under an *eventually-connected* fault plan (probabilistic drops,
//!   duplication, delay spikes, healing partitions, recovering crashes)
//!   the reliable-delivery sublayer keeps `AsyncTreeAA` terminating, and
//!   every honest output stays in the honest input hull;
//! * over-budget *permanent* crashes surface as structured `Degraded`
//!   outcomes whose evidence certificates are non-empty and actually
//!   demonstrate the over-budget condition — never as silently
//!   unguaranteed plain values.

use std::sync::Arc;

use async_aa::{AsyncTreeAaConfig, AsyncTreeAaParty};
use async_net::{run_async_faulted, AsyncConfig, DelayModel, Reliable, SilentAsync};
use sim_net::{CrashFault, FaultPlan, Outcome, Partition};
use tree_aa::check_tree_aa;
use tree_model::{generate, Tree, VertexId};

fn setup(n: usize) -> (Arc<Tree>, Vec<VertexId>) {
    let tree = Arc::new(generate::caterpillar(5, 2));
    let verts: Vec<VertexId> = tree.vertices().collect();
    let inputs = (0..n).map(|i| verts[(i * 3) % verts.len()]).collect();
    (tree, inputs)
}

#[test]
fn reliable_layer_rides_out_eventually_connected_faults() {
    let (n, t) = (4, 1);
    let (tree, inputs) = setup(n);
    let cfg = AsyncTreeAaConfig::new(n, t, &tree).unwrap();
    let plan = FaultPlan {
        seed: 5,
        drop_permille: 250,
        dup_permille: 150,
        delay_spike_permille: 100,
        partitions: vec![Partition {
            side: vec![0],
            from_round: 2,
            heal_round: 4,
        }],
        crashes: vec![CrashFault {
            party: 2,
            crash_round: 2,
            recover_round: 3,
        }],
    };
    plan.validate(n).unwrap();
    assert!(plan.eventually_connected());
    for seed in [1u64, 7, 23] {
        let report = run_async_faulted(
            AsyncConfig {
                n,
                t,
                seed,
                delay: DelayModel::Uniform { min: 0.1 },
                max_events: 5_000_000,
            },
            &plan,
            |id, _| {
                Reliable::new(
                    AsyncTreeAaParty::new(cfg.clone(), Arc::clone(&tree), inputs[id.index()]),
                    n,
                )
            },
            SilentAsync {
                parties: Vec::new(),
            },
        )
        .unwrap_or_else(|e| panic!("seed {seed}: run did not terminate: {e}"));
        assert!(
            report.metrics.fault_drops > 0,
            "seed {seed}: the plan never bit"
        );
        assert!(
            report.metrics.retransmissions > 0,
            "seed {seed}: losses were never repaired"
        );
        // Transient faults only: nobody ends up permanently crashed, and
        // every output — degraded or not — stays in the honest hull.
        assert!(report.crashed.iter().all(|&c| !c), "seed {seed}");
        let outputs: Vec<VertexId> = report
            .honest_outputs()
            .into_iter()
            .map(Outcome::into_value)
            .collect();
        check_tree_aa(&tree, &inputs, &outputs).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

#[test]
fn over_budget_permanent_crashes_degrade_survivors_with_certificates() {
    let (n, t) = (4, 1);
    let (tree, inputs) = setup(n);
    let cfg = AsyncTreeAaConfig::new(n, t, &tree).unwrap();
    let plan = FaultPlan {
        seed: 9,
        crashes: vec![
            CrashFault {
                party: 2,
                crash_round: 2,
                recover_round: u32::MAX,
            },
            CrashFault {
                party: 3,
                crash_round: 2,
                recover_round: u32::MAX,
            },
        ],
        ..FaultPlan::none()
    };
    assert!(!plan.eventually_connected());
    let report = run_async_faulted(
        AsyncConfig {
            n,
            t,
            seed: 3,
            delay: DelayModel::Uniform { min: 0.2 },
            max_events: 5_000_000,
        },
        &plan,
        |id, _| {
            Reliable::new(
                AsyncTreeAaParty::new(cfg.clone(), Arc::clone(&tree), inputs[id.index()]),
                n,
            )
        },
        SilentAsync {
            parties: Vec::new(),
        },
    )
    .unwrap();
    assert_eq!(report.crashed, vec![false, false, true, true]);
    let survivors = report.honest_outputs();
    assert_eq!(survivors.len(), 2);
    for (i, outcome) in survivors.into_iter().enumerate() {
        match outcome {
            Outcome::Value(v) => {
                panic!("survivor {i} claims full guarantees ({v:?}) with 2 > t = 1 parties down")
            }
            Outcome::Degraded(d) => {
                assert!(!d.certificate.evidence.is_empty(), "survivor {i}");
                assert!(
                    d.certificate.exceeds_budget(),
                    "survivor {i}: {} observed within budget {}",
                    d.certificate.observed,
                    d.certificate.budget
                );
            }
        }
    }
}
