//! Canonical JSON for repro files — re-exported from the shared
//! [`aa_codec`] crate so the fuzz corpus, flight-recorder traces, and bench
//! output all use exactly one codec. See `aa-codec` for the value type,
//! writer, and parser.

pub use aa_codec::Json;
