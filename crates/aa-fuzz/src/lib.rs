//! `aa-fuzz` — a seeded, fully deterministic adversarial property-fuzzing
//! harness for the approximate-agreement protocols of this workspace.
//!
//! The paper's guarantees are universally quantified: validity,
//! ε-agreement and the round bound must hold for *every* tree, *every*
//! honest input placement and *every* adversary within the `t < n/3`
//! budget. Hand-picked scenarios cannot cover that space; this crate
//! samples it. A master seed induces a stream of [`FuzzCase`]s — random
//! tree (eight topology families, caterpillars and brooms over-weighted
//! because the round-bound analysis is tight there), random inputs, and a
//! random adversary composed from the `sim-net` zoo — each of which is
//! run through `tree-aa` (both inner engines), the `O(log D)` baseline,
//! or `real-aa` and checked against six machine-checkable invariants
//! (see [`run`]):
//!
//! 1. sequential ≡ parallel engine determinism,
//! 2. the protocol's explicit round bound,
//! 3. convex-hull validity,
//! 4. 1-agreement (ε-agreement for `real-aa`),
//! 5. byte-identical flight-recorder traces across both step modes,
//! 6. the `aa-trace` invariant checkers (round totals, hull monotonicity,
//!    grade semantics) plus exact trace-vs-metrics accounting.
//!
//! With `--faults` the stream additionally overlays benign-fault plans
//! (healing partitions, crash/recovery windows, and occasional
//! catastrophic over-budget crash sets) and checks the *degradation
//! contract*: transient faults must still terminate within the relaxed
//! round bound, and over-budget fault sets must surface as structured
//! `Degraded` outcomes carrying checkable evidence certificates — never
//! as silently unguaranteed values.
//!
//! Everything is a pure function of integers: case `i` of seed `s` is
//! reproducible from `(s, i)` alone, two identical invocations produce
//! bit-identical output, and no wall-clock or host state leaks in.
//!
//! Failing cases are shrunk by [`minimize`](minimize::minimize) (the case
//! spec stores generator parameters, so shrinking is integer surgery) and
//! persisted as JSON repros in `fuzz-corpus/`, which the workspace test
//! suite replays on every `cargo test` — a bug found once stays fixed.
//!
//! ```
//! use aa_fuzz::{gen_case, run_case};
//!
//! let case = gen_case(42, 0);
//! run_case(&case).expect("invariants hold");
//! ```

#![warn(missing_docs)]

pub mod adversary;
pub mod case;
pub mod corpus;
pub mod gen;
pub mod json;
pub mod minimize;
pub mod run;
pub mod scenario;

use std::io::{self, Write};
use std::path::{Path, PathBuf};

pub use adversary::build_adversary;
pub use case::{AdvAtom, AdvAtomKind, Family, FaultAtom, FuzzCase, ProtocolKind, TreeSpec};
pub use corpus::{load_case, load_dir, save_case, CorpusEntry};
pub use gen::{gen_case, with_faults};
pub use json::Json;
pub use minimize::{minimize, Minimized};
pub use run::{
    run_case, run_case_mutated, run_case_traced, CaseStats, CheckFailure, Mutation, TracedCase,
};
pub use scenario::{record_scenario, scenario, scenario_names, SCENARIO_NAMES};

/// Options of a fuzzing batch (the `cli fuzz` subcommand maps onto this).
#[derive(Clone, Debug)]
pub struct FuzzOptions {
    /// Master seed of the case stream.
    pub seed: u64,
    /// Number of cases to run.
    pub cases: u64,
    /// Whether to minimize failing cases before reporting them.
    pub minimize: bool,
    /// Whether to overlay each case with a generated benign-fault plan
    /// (partitions, crash/recovery windows — see [`with_faults`]), adding
    /// the degradation contract to the checked invariants.
    pub faults: bool,
    /// Where to persist minimized repros (`None` disables persistence).
    pub corpus_dir: Option<PathBuf>,
}

/// Budget of shrink executions per failing case.
const MINIMIZE_ATTEMPTS: usize = 500;

/// Runs a batch of generated cases, reporting to `out`, and returns the
/// number of invariant violations found.
///
/// The report is a pure function of `opts` — it contains no timing, paths
/// outside `opts.corpus_dir`, or other host state — so two runs with the
/// same options are bit-identical (the acceptance contract of the `fuzz`
/// subcommand).
///
/// # Errors
///
/// Propagates I/O errors from `out` or from corpus persistence.
pub fn run_batch(opts: &FuzzOptions, out: &mut dyn Write) -> io::Result<usize> {
    writeln!(
        out,
        "fuzz: seed {} · {} cases{}",
        opts.seed,
        opts.cases,
        if opts.faults { " · faults on" } else { "" }
    )?;
    let mut violations = 0usize;
    for index in 0..opts.cases {
        let mut case = gen_case(opts.seed, index);
        if opts.faults {
            case = with_faults(case, opts.seed, index);
        }
        // The traced path checks the classic invariants *and* the
        // flight-recorder contract (trace determinism, trace-level
        // checkers, metrics accounting) on every case.
        let Err(failure) = run_case_traced(&case) else {
            continue;
        };
        violations += 1;
        writeln!(
            out,
            "case {index} [{} on {} n={} t={}]: {failure}",
            case.protocol.name(),
            case.tree.family.name(),
            case.n,
            case.t
        )?;
        let (repro, reason) = if opts.minimize {
            let minimized = minimize::minimize(&case, Mutation::None, MINIMIZE_ATTEMPTS);
            writeln!(
                out,
                "  minimized to {} vertices, n={}, {} atom(s) in {} attempts",
                minimized.case.tree.build().vertex_count(),
                minimized.case.n,
                minimized.case.atoms.len(),
                minimized.attempts
            )?;
            (minimized.case, minimized.failure.to_string())
        } else {
            (case, failure.to_string())
        };
        writeln!(out, "  repro: {}", repro.to_json())?;
        if let Some(dir) = &opts.corpus_dir {
            let path = save_case(dir, &repro, &reason)?;
            writeln!(out, "  saved: {}", path.display())?;
        }
    }
    writeln!(
        out,
        "fuzz: {} cases, {} violation(s), seed {}",
        opts.cases, violations, opts.seed
    )?;
    Ok(violations)
}

/// Replays every corpus file under `dir` and checks that all invariants
/// now hold — minimized repros enter the corpus when a bug is found, and
/// stay as permanent regression tests after it is fixed. Returns the
/// number of cases replayed.
///
/// # Errors
///
/// Returns a message naming every unreadable file or still-failing case.
pub fn replay_corpus(dir: &Path) -> Result<usize, String> {
    let entries = load_dir(dir)?;
    let mut failures = Vec::new();
    for (path, entry) in &entries {
        if let Err(failure) = run_case(&entry.case) {
            failures.push(format!("{}: {failure}", path.display()));
        }
    }
    if failures.is_empty() {
        Ok(entries.len())
    } else {
        Err(failures.join("\n"))
    }
}
