//! Deterministic case generation: case `i` of master seed `s` is a pure
//! function of `(s, i)`, so any failing case can be regenerated from two
//! integers and a whole batch can be replayed bit-for-bit with `--seed`.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::case::{AdvAtom, AdvAtomKind, Family, FaultAtom, FuzzCase, ProtocolKind, TreeSpec};

/// Largest requested tree size (kept small: the invariants are
/// combinatorial, so dense coverage of small shapes beats sparse coverage
/// of big ones — and minimized repros want small trees anyway).
const MAX_TREE_SIZE: usize = 28;

/// splitmix64 — the standard seed-stream splitter.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Generates case `index` of the stream rooted at `master_seed`.
///
/// The result always satisfies [`FuzzCase::validate`]: `3t < n`, victims
/// are a subset of at most `t` distinct parties, and crash rounds are
/// positive.
pub fn gen_case(master_seed: u64, index: u64) -> FuzzCase {
    let mut stream = master_seed ^ index.wrapping_mul(0xa076_1d64_78bd_642f);
    let case_seed = splitmix64(&mut stream);
    let mut rng = ChaCha8Rng::seed_from_u64(case_seed);

    let family = Family::ALL[rng.gen_range(0..Family::ALL.len())];
    let tree = TreeSpec {
        family,
        size: rng.gen_range(2..=MAX_TREE_SIZE),
        seed: rng.gen_range(0..1u64 << 32),
    };

    let n = rng.gen_range(4..=10);
    let t = rng.gen_range(0..=(n - 1) / 3);
    let protocol = ProtocolKind::ALL[rng.gen_range(0..ProtocolKind::ALL.len())];
    let inputs = (0..n).map(|_| rng.gen_range(0..64)).collect();

    // The victim pool: up to `t` distinct parties shared by all atoms, so
    // composition never blows the corruption budget.
    let mut pool: Vec<usize> = (0..n).collect();
    // Fisher–Yates (the vendored rand has no `seq` module).
    for i in (1..pool.len()).rev() {
        pool.swap(i, rng.gen_range(0..=i));
    }
    pool.truncate(t);

    let atom_count = if t == 0 { 0 } else { rng.gen_range(0..=2) };
    let atoms = (0..atom_count)
        .map(|_| {
            let mut victims: Vec<usize> =
                pool.iter().copied().filter(|_| rng.gen_bool(0.7)).collect();
            if victims.is_empty() {
                victims.push(pool[rng.gen_range(0..pool.len())]);
            }
            let kind = match rng.gen_range(0..4u32) {
                0 => AdvAtomKind::Crash {
                    round: rng.gen_range(1..=6),
                },
                1 => AdvAtomKind::Omission {
                    permille: rng.gen_range(0..=1000),
                },
                2 => AdvAtomKind::Equivocate,
                _ => AdvAtomKind::Flaky,
            };
            AdvAtom { kind, victims }
        })
        .collect();

    FuzzCase {
        seed: case_seed,
        tree,
        n,
        t,
        protocol,
        inputs,
        atoms,
        faults: Vec::new(),
    }
}

/// Adds a generated benign-fault schedule to `case` (the `--faults` fuzz
/// dimension). Drawn from an RNG stream independent of [`gen_case`]'s, so
/// enabling faults changes nothing about the tree, inputs, or adversary of
/// case `(s, i)` — a faulted failure minimizes against the same base case.
///
/// Roughly: 40% of cases stay fault-free; 10% are *catastrophic* (more
/// than `t` parties permanently crashed from round 1, which must surface
/// as a `Degraded` outcome, never a silently wrong value); the rest get
/// one or two healing partitions and crash/recovery windows.
pub fn with_faults(mut case: FuzzCase, master_seed: u64, index: u64) -> FuzzCase {
    let mut stream = master_seed ^ index.wrapping_mul(0xd6e8_feb8_6659_fd93) ^ 0xfa17;
    let fault_seed = splitmix64(&mut stream);
    let mut rng = ChaCha8Rng::seed_from_u64(fault_seed);
    let n = case.n;

    let style = rng.gen_range(0..10u32);
    if style < 4 {
        return case; // fault-free: the plan dimension includes "none".
    }
    if style < 5 {
        // Catastrophic: t + 1 distinct parties down forever from round 1.
        let mut pool: Vec<usize> = (0..n).collect();
        for i in (1..pool.len()).rev() {
            pool.swap(i, rng.gen_range(0..=i));
        }
        for &party in pool.iter().take(case.t + 1) {
            case.faults.push(FaultAtom::CrashRecover {
                party,
                crash_round: 1,
                recover_round: u32::MAX,
            });
        }
        return case;
    }
    // Transient faults: everything heals, so the run must still terminate
    // within the bound plus the plan's scheduled extent.
    for _ in 0..rng.gen_range(1..=2) {
        if rng.gen_bool(0.5) {
            let side_len = rng.gen_range(1..n);
            let mut pool: Vec<usize> = (0..n).collect();
            for i in (1..pool.len()).rev() {
                pool.swap(i, rng.gen_range(0..=i));
            }
            pool.truncate(side_len);
            pool.sort_unstable();
            let from_round: u32 = rng.gen_range(1..=4);
            case.faults.push(FaultAtom::Partition {
                side: pool,
                from_round,
                heal_round: from_round + rng.gen_range(1..=3u32),
            });
        } else {
            let crash_round: u32 = rng.gen_range(1..=5);
            case.faults.push(FaultAtom::CrashRecover {
                party: rng.gen_range(0..n),
                crash_round,
                recover_round: crash_round + rng.gen_range(1..=4u32),
            });
        }
    }
    case
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_cases_are_valid() {
        for i in 0..500 {
            let case = gen_case(42, i);
            case.validate()
                .unwrap_or_else(|e| panic!("case {i} invalid: {e}"));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for i in 0..50 {
            assert_eq!(gen_case(7, i), gen_case(7, i));
        }
    }

    #[test]
    fn different_indices_give_different_cases() {
        let distinct: std::collections::HashSet<u64> =
            (0..100).map(|i| gen_case(1, i).fingerprint()).collect();
        assert!(
            distinct.len() > 90,
            "only {} distinct cases",
            distinct.len()
        );
    }

    #[test]
    fn faulted_cases_are_valid_deterministic_and_leave_the_base_alone() {
        let mut faulted = 0;
        let mut catastrophic = 0;
        for i in 0..300 {
            let base = gen_case(42, i);
            let case = with_faults(base.clone(), 42, i);
            case.validate()
                .unwrap_or_else(|e| panic!("faulted case {i} invalid: {e}"));
            assert_eq!(case, with_faults(gen_case(42, i), 42, i));
            // Faults are a pure overlay: the base case is untouched.
            let mut stripped = case.clone();
            stripped.faults.clear();
            assert_eq!(stripped, base);
            if case.has_faults() {
                faulted += 1;
            }
            if case.fault_plan().permanently_crashed().len() > case.t {
                catastrophic += 1;
            }
        }
        assert!(faulted > 100, "only {faulted}/300 cases got faults");
        assert!(catastrophic > 10, "only {catastrophic}/300 catastrophic");
    }

    #[test]
    fn stream_covers_families_protocols_and_adversaries() {
        let mut families = std::collections::HashSet::new();
        let mut protocols = std::collections::HashSet::new();
        let mut kinds = std::collections::HashSet::new();
        for i in 0..300 {
            let case = gen_case(3, i);
            families.insert(case.tree.family.name());
            protocols.insert(case.protocol.name());
            for atom in &case.atoms {
                kinds.insert(atom.kind.name());
            }
        }
        assert_eq!(families.len(), Family::ALL.len());
        assert_eq!(protocols.len(), ProtocolKind::ALL.len());
        assert_eq!(kinds.len(), 4);
    }
}
