//! Greedy case minimization: shrink a failing case while it still fails.
//!
//! Because a [`FuzzCase`] stores generator parameters rather than
//! materialized objects, every shrink candidate is produced by editing a
//! few integers and re-validating — no structural repair needed. The
//! shrinker runs a fixpoint loop over an ordered candidate list (big
//! structural cuts first, cosmetic ones last) and accepts a candidate iff
//! it still validates *and* still reproduces a failure.

use crate::case::FuzzCase;
use crate::run::{run_case_mutated, CheckFailure, Mutation};

/// Outcome of a minimization.
#[derive(Clone, Debug)]
pub struct Minimized {
    /// The smallest still-failing case found.
    pub case: FuzzCase,
    /// The failure the minimized case reproduces.
    pub failure: CheckFailure,
    /// Shrink candidates actually executed.
    pub attempts: usize,
}

/// Minimizes `original` (which must fail) under the given mutation,
/// executing at most `max_attempts` candidate runs.
///
/// The shrink order is: halve the tree, then chip one vertex off, then
/// drop whole adversary atoms and whole fault atoms, then drop individual
/// victims, then lower `t`, then lower `n`, then flatten all inputs to
/// zero. Each accepted
/// candidate restarts the pass, so the result is a local fixpoint — no
/// single listed shrink applies to it.
///
/// # Panics
///
/// Panics if `original` does not fail (minimizing a passing case is a
/// harness bug).
pub fn minimize(original: &FuzzCase, mutation: Mutation, max_attempts: usize) -> Minimized {
    let mut failure =
        run_case_mutated(original, mutation).expect_err("minimize() requires a failing case");
    let mut best = original.clone();
    let mut attempts = 0usize;

    loop {
        let mut improved = false;
        for candidate in candidates(&best) {
            if attempts >= max_attempts {
                return Minimized {
                    case: best,
                    failure,
                    attempts,
                };
            }
            if candidate.validate().is_err() {
                continue;
            }
            attempts += 1;
            if let Err(f) = run_case_mutated(&candidate, mutation) {
                best = candidate;
                failure = f;
                improved = true;
                break; // restart the pass from the shrunk case
            }
        }
        if !improved {
            return Minimized {
                case: best,
                failure,
                attempts,
            };
        }
    }
}

/// The ordered shrink candidates derived from `case`.
fn candidates(case: &FuzzCase) -> Vec<FuzzCase> {
    let mut out = Vec::new();

    // 1. Halve the tree, then chip one vertex off.
    if case.tree.size > 2 {
        let mut c = case.clone();
        c.tree.size = (case.tree.size / 2).max(2);
        out.push(c);
        let mut c = case.clone();
        c.tree.size -= 1;
        out.push(c);
    }

    // 2. Drop a whole adversary atom, then a whole fault atom.
    for i in 0..case.atoms.len() {
        let mut c = case.clone();
        c.atoms.remove(i);
        out.push(c);
    }
    for i in 0..case.faults.len() {
        let mut c = case.clone();
        c.faults.remove(i);
        out.push(c);
    }

    // 3. Drop one victim from an atom (atoms keep >= 1 victim; dropping
    //    the last one is covered by the whole-atom candidates above).
    for i in 0..case.atoms.len() {
        for j in 0..case.atoms[i].victims.len() {
            if case.atoms[i].victims.len() > 1 {
                let mut c = case.clone();
                c.atoms[i].victims.remove(j);
                out.push(c);
            }
        }
    }

    // 4. Lower the corruption budget.
    if case.t > 0 {
        let mut c = case.clone();
        c.t -= 1;
        out.push(c);
    }

    // 5. Lower n (dropping the last party's input; victim indices that
    //    fall out of range make the candidate invalid, which the caller
    //    filters via validate()).
    if case.n > 4 {
        let mut c = case.clone();
        c.n -= 1;
        c.inputs.pop();
        out.push(c);
    }

    // 6. Flatten all inputs to zero.
    if case.inputs.iter().any(|&i| i != 0) {
        let mut c = case.clone();
        c.inputs.iter_mut().for_each(|i| *i = 0);
        out.push(c);
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::{AdvAtom, AdvAtomKind, Family, FaultAtom, ProtocolKind, TreeSpec};

    /// A rich case that passes un-mutated but fails under
    /// `SkewFirstOutput` — the shrinker should drive it to a tiny tree.
    fn rich_case() -> FuzzCase {
        FuzzCase {
            seed: 9,
            tree: TreeSpec {
                family: Family::Prufer,
                size: 24,
                seed: 31,
            },
            n: 9,
            t: 2,
            protocol: ProtocolKind::Baseline,
            inputs: vec![3, 17, 40, 8, 22, 5, 11, 60, 2],
            atoms: vec![
                AdvAtom {
                    kind: AdvAtomKind::Equivocate,
                    victims: vec![1, 4],
                },
                AdvAtom {
                    kind: AdvAtomKind::Crash { round: 2 },
                    victims: vec![1],
                },
            ],
            faults: Vec::new(),
        }
    }

    #[test]
    fn injected_validity_bug_minimizes_to_a_tiny_repro() {
        let case = rich_case();
        assert!(run_case_mutated(&case, Mutation::None).is_ok());
        let minimized = minimize(&case, Mutation::SkewFirstOutput, 400);
        let tree = minimized.case.tree.build();
        assert!(
            tree.vertex_count() <= 8,
            "minimized repro still has {} vertices",
            tree.vertex_count()
        );
        assert!(minimized.case.validate().is_ok());
        assert!(run_case_mutated(&minimized.case, Mutation::SkewFirstOutput).is_err());
        assert!(matches!(
            minimized.failure,
            CheckFailure::Validity(_) | CheckFailure::Agreement(_)
        ));
    }

    #[test]
    fn minimization_is_deterministic() {
        let case = rich_case();
        let a = minimize(&case, Mutation::SkewFirstOutput, 200);
        let b = minimize(&case, Mutation::SkewFirstOutput, 200);
        assert_eq!(a.case, b.case);
        assert_eq!(a.attempts, b.attempts);
    }

    #[test]
    fn candidates_never_grow_the_case() {
        let mut case = rich_case();
        case.faults = vec![
            FaultAtom::Partition {
                side: vec![0, 1],
                from_round: 2,
                heal_round: 3,
            },
            FaultAtom::CrashRecover {
                party: 6,
                crash_round: 2,
                recover_round: 3,
            },
        ];
        for c in candidates(&case) {
            assert!(c.tree.size <= case.tree.size);
            assert!(c.n <= case.n);
            assert!(c.t <= case.t);
            assert!(c.atoms.len() <= case.atoms.len());
            assert!(c.faults.len() <= case.faults.len());
        }
    }

    #[test]
    fn candidates_shrink_the_fault_schedule_one_atom_at_a_time() {
        let mut case = rich_case();
        case.faults = vec![
            FaultAtom::Partition {
                side: vec![0, 1],
                from_round: 2,
                heal_round: 3,
            },
            FaultAtom::CrashRecover {
                party: 6,
                crash_round: 2,
                recover_round: 3,
            },
        ];
        let dropped: Vec<_> = candidates(&case)
            .into_iter()
            .filter(|c| c.faults.len() < case.faults.len() && c.tree == case.tree && c.n == case.n)
            .collect();
        assert_eq!(dropped.len(), 2, "one candidate per dropped fault atom");
        for c in &dropped {
            assert_eq!(c.faults.len(), 1);
            assert_eq!(c.atoms, case.atoms, "fault shrinks must not touch atoms");
        }
    }
}
