//! Named canonical scenarios — the fixed `(tree, protocol, adversary)`
//! combinations behind the `treeaa trace` subcommand and the golden-trace
//! conformance suite.
//!
//! A scenario pins everything except the run seed: the tree family, shape
//! seed and size, the party counts, the protocol, the honest inputs and
//! the adversary composition. The caller supplies only `seed`, which
//! drives the adversary's RNG — so `(name, seed)` fully determines the
//! flight-recorder trace, and a golden trace file is reproducible from
//! the scenario name and seed stored next to it.

use sim_net::Trace;

use crate::case::{AdvAtom, AdvAtomKind, Family, FaultAtom, FuzzCase, ProtocolKind, TreeSpec};
use crate::run::run_case_traced;

/// The names of all canonical scenarios, in registry order.
pub const SCENARIO_NAMES: [&str; 10] = [
    "path-honest",
    "star-crash",
    "caterpillar-equivocate",
    "broom-realaa-equivocate",
    "path-baseline-flaky",
    "star-halving-honest",
    "partition-heal",
    "crash-recovery",
    "bundle-k4-honest",
    "bundle-k4-crash",
];

/// All canonical scenario names, in registry order.
pub fn scenario_names() -> &'static [&'static str] {
    &SCENARIO_NAMES
}

/// Builds the named scenario with the given adversary seed, or `None` if
/// the name is unknown. The returned case always passes
/// [`FuzzCase::validate`].
pub fn scenario(name: &str, seed: u64) -> Option<FuzzCase> {
    let case = match name {
        // TreeAA (gradecast engine) on a path, no adversary: the
        // worst-case topology for diameter-driven protocols, fully honest.
        "path-honest" => FuzzCase {
            seed,
            tree: TreeSpec {
                family: Family::Path,
                size: 6,
                seed: 11,
            },
            n: 4,
            t: 1,
            protocol: ProtocolKind::TreeAaGradecast,
            inputs: vec![0, 5, 2, 3],
            atoms: Vec::new(),
            faults: Vec::new(),
        },
        // TreeAA (gradecast engine) on a star with an early crash:
        // exercises Corrupt events and mid-run honest-set shrinkage.
        "star-crash" => FuzzCase {
            seed,
            tree: TreeSpec {
                family: Family::Star,
                size: 7,
                seed: 13,
            },
            n: 7,
            t: 2,
            protocol: ProtocolKind::TreeAaGradecast,
            inputs: vec![0, 6, 3, 1, 4, 2, 5],
            atoms: vec![AdvAtom {
                kind: AdvAtomKind::Crash { round: 2 },
                victims: vec![5, 6],
            }],
            faults: Vec::new(),
        },
        // TreeAA (gradecast engine) on a caterpillar under equivocation:
        // the fuzz harness's own base case, promoted to a golden trace.
        "caterpillar-equivocate" => FuzzCase {
            seed,
            tree: TreeSpec {
                family: Family::Caterpillar,
                size: 9,
                seed: 2,
            },
            n: 7,
            t: 2,
            protocol: ProtocolKind::TreeAaGradecast,
            inputs: vec![0, 5, 2, 9, 1, 7, 3],
            atoms: vec![AdvAtom {
                kind: AdvAtomKind::Equivocate,
                victims: vec![3],
            }],
            faults: Vec::new(),
        },
        // RealAA on a broom under equivocation: gc.grade and realaa.iter
        // events with a Byzantine leader in every iteration.
        "broom-realaa-equivocate" => FuzzCase {
            seed,
            tree: TreeSpec {
                family: Family::Broom,
                size: 8,
                seed: 5,
            },
            n: 7,
            t: 2,
            protocol: ProtocolKind::RealAa,
            inputs: vec![1, 6, 0, 4, 7, 2, 5],
            atoms: vec![AdvAtom {
                kind: AdvAtomKind::Equivocate,
                victims: vec![2, 4],
            }],
            faults: Vec::new(),
        },
        // The O(log D) baseline on a path with a flaky rushing adversary:
        // Forward events interleaved with selective silence.
        "path-baseline-flaky" => FuzzCase {
            seed,
            tree: TreeSpec {
                family: Family::Path,
                size: 7,
                seed: 17,
            },
            n: 5,
            t: 1,
            protocol: ProtocolKind::Baseline,
            inputs: vec![0, 6, 3, 2, 5],
            atoms: vec![AdvAtom {
                kind: AdvAtomKind::Flaky,
                victims: vec![4],
            }],
            faults: Vec::new(),
        },
        // TreeAA with the halving inner engine on a star, fully honest:
        // the shortest, most readable golden trace.
        "star-halving-honest" => FuzzCase {
            seed,
            tree: TreeSpec {
                family: Family::Star,
                size: 6,
                seed: 3,
            },
            n: 4,
            t: 1,
            protocol: ProtocolKind::TreeAaHalving,
            inputs: vec![0, 5, 1, 3],
            atoms: Vec::new(),
            faults: Vec::new(),
        },
        // The O(log D) baseline on a path with a link partition that heals:
        // fault.partition / fault.heal events bracketing frozen rounds.
        "partition-heal" => FuzzCase {
            seed,
            tree: TreeSpec {
                family: Family::Path,
                size: 6,
                seed: 19,
            },
            n: 5,
            t: 1,
            protocol: ProtocolKind::Baseline,
            inputs: vec![0, 5, 3, 1, 4],
            atoms: Vec::new(),
            faults: vec![FaultAtom::Partition {
                side: vec![0, 1],
                from_round: 2,
                heal_round: 4,
            }],
        },
        // The O(log D) baseline on a star with a crash that recovers:
        // fault.crash / fault.recover events and a catch-up decision.
        "crash-recovery" => FuzzCase {
            seed,
            tree: TreeSpec {
                family: Family::Star,
                size: 6,
                seed: 23,
            },
            n: 5,
            t: 1,
            protocol: ProtocolKind::Baseline,
            inputs: vec![2, 5, 0, 4, 1],
            atoms: Vec::new(),
            faults: vec![FaultAtom::CrashRecover {
                party: 3,
                crash_round: 2,
                recover_round: 4,
            }],
        },
        // Bundled RealAA — 4 instances amortized over one gradecast
        // wire — on a broom, fully honest: per-instance gc.grade and
        // realaa.iter events keyed by `inst`.
        "bundle-k4-honest" => FuzzCase {
            seed,
            tree: TreeSpec {
                family: Family::Broom,
                size: 8,
                seed: 29,
            },
            n: 4,
            t: 1,
            protocol: ProtocolKind::BundledRealAa,
            inputs: vec![0, 6, 3, 5],
            atoms: Vec::new(),
            faults: Vec::new(),
        },
        // Bundled RealAA with an early crash: one crashed sender goes
        // silent in every bundled instance at once, so all four
        // instances mute it in the same iteration.
        "bundle-k4-crash" => FuzzCase {
            seed,
            tree: TreeSpec {
                family: Family::Caterpillar,
                size: 9,
                seed: 31,
            },
            n: 7,
            t: 2,
            protocol: ProtocolKind::BundledRealAa,
            inputs: vec![0, 5, 2, 8, 1, 7, 3],
            atoms: vec![AdvAtom {
                kind: AdvAtomKind::Crash { round: 2 },
                victims: vec![5, 6],
            }],
            faults: Vec::new(),
        },
        _ => return None,
    };
    Some(case)
}

/// Runs the named scenario under the flight recorder and returns the
/// trace, labeled `"<name>:<seed>"` — the single code path behind both
/// `treeaa trace` and the golden-trace conformance suite, so a checked-in
/// golden file is reproducible from the label alone.
///
/// # Errors
///
/// Returns a message if the name is unknown (listing the known names) or
/// if the run violates any harness invariant.
pub fn record_scenario(name: &str, seed: u64) -> Result<Trace, String> {
    let case = scenario(name, seed).ok_or_else(|| {
        format!(
            "unknown scenario `{name}`; available: {}",
            SCENARIO_NAMES.join(", ")
        )
    })?;
    let traced =
        run_case_traced(&case).map_err(|e| format!("scenario `{name}` seed {seed}: {e}"))?;
    let mut trace = traced.trace;
    trace.label = format!("{name}:{seed}");
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_name_resolves_and_validates() {
        for name in scenario_names() {
            let case = scenario(name, 42).unwrap_or_else(|| panic!("{name} missing"));
            case.validate()
                .unwrap_or_else(|e| panic!("{name} invalid: {e}"));
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert_eq!(scenario("no-such-scenario", 1), None);
    }

    #[test]
    fn seed_feeds_the_case_seed_only() {
        for name in scenario_names() {
            let a = scenario(name, 1).unwrap();
            let b = scenario(name, 2).unwrap();
            assert_ne!(a.seed, b.seed);
            assert_eq!(a.tree, b.tree, "{name}: tree must not depend on seed");
            assert_eq!(a.inputs, b.inputs);
        }
    }

    #[test]
    fn record_labels_the_trace() {
        let trace = record_scenario("star-halving-honest", 9).unwrap();
        assert_eq!(trace.label, "star-halving-honest:9");
        assert!(!trace.events.is_empty());
        let err = record_scenario("bogus", 0).unwrap_err();
        assert!(err.contains("path-honest"), "{err}");
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = scenario_names().to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SCENARIO_NAMES.len());
    }
}
