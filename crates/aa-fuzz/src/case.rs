//! The fuzz-case specification: a small, fully self-describing record
//! from which a run can be reconstructed bit-for-bit.
//!
//! A [`FuzzCase`] stores *generator parameters*, not materialized objects:
//! the tree is `(family, size, seed)` and the honest inputs are raw
//! indices taken modulo the vertex count at run time. That representation
//! is what makes minimization trivial — shrinking `size` or dropping an
//! adversary atom always yields another well-formed case, so the shrinker
//! never has to repair invariants by hand.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sim_net::{CrashFault, FaultPlan, Partition};
use tree_model::generate;
use tree_model::Tree;

use crate::json::Json;

/// A tree topology family the generator can draw from.
///
/// The list deliberately over-weights the near-path shapes (caterpillars,
/// brooms, spiders) where the round-bound analysis is tight, alongside
/// uniform random trees via Prüfer sequences.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// A path `P_n` — the worst case for the diameter-driven baseline.
    Path,
    /// A star `K_{1,n-1}` — diameter 2, hull logic degenerate.
    Star,
    /// A caterpillar: a spine with two legs per spine vertex.
    Caterpillar,
    /// A broom: a path handle ending in a star of bristles.
    Broom,
    /// A balanced binary tree.
    BalancedBinary,
    /// A spider with three legs.
    Spider,
    /// A uniform random labeled tree (Prüfer sequence).
    Prufer,
    /// A random-attachment (preferential-free) recursive tree.
    Attachment,
}

impl Family {
    /// All families, in the order the generator indexes them.
    pub const ALL: [Family; 8] = [
        Family::Path,
        Family::Star,
        Family::Caterpillar,
        Family::Broom,
        Family::BalancedBinary,
        Family::Spider,
        Family::Prufer,
        Family::Attachment,
    ];

    /// The canonical name used in corpus files.
    pub fn name(self) -> &'static str {
        match self {
            Family::Path => "path",
            Family::Star => "star",
            Family::Caterpillar => "caterpillar",
            Family::Broom => "broom",
            Family::BalancedBinary => "balanced-binary",
            Family::Spider => "spider",
            Family::Prufer => "prufer",
            Family::Attachment => "attachment",
        }
    }

    /// Parses a canonical name back into a family.
    pub fn from_name(name: &str) -> Option<Family> {
        Family::ALL.into_iter().find(|f| f.name() == name)
    }
}

/// Generator parameters for a tree: rebuilt on demand, never stored.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TreeSpec {
    /// Topology family.
    pub family: Family,
    /// Requested vertex count (the built tree has at least 2 and roughly
    /// this many vertices; structured families round to their shape).
    pub size: usize,
    /// Seed for the random families; ignored by deterministic shapes.
    pub seed: u64,
}

impl TreeSpec {
    /// Materializes the tree. Total vertex count is clamped to `>= 2` so
    /// every case has at least one edge and a non-trivial hull.
    pub fn build(&self) -> Tree {
        let size = self.size.max(2);
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        match self.family {
            Family::Path => generate::path(size),
            Family::Star => generate::star(size),
            Family::Caterpillar => generate::caterpillar(size.div_ceil(3), 2),
            Family::Broom => generate::broom(size.div_ceil(2).max(1), size / 2),
            Family::BalancedBinary => {
                // Smallest depth whose full binary tree reaches `size`.
                let mut depth = 1u32;
                while (1usize << (depth + 1)) - 1 < size && depth < 12 {
                    depth += 1;
                }
                generate::balanced_kary(2, depth)
            }
            Family::Spider => generate::spider(3, size.div_ceil(3).max(1)),
            Family::Prufer => generate::random_prufer(size, &mut rng),
            Family::Attachment => generate::random_attachment(size, &mut rng),
        }
    }
}

/// Which protocol stack the case exercises.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtocolKind {
    /// `tree-aa` with the gradecast inner engine.
    TreeAaGradecast,
    /// `tree-aa` with the halving inner engine.
    TreeAaHalving,
    /// The `O(log D)` Nowak–Rybicki safe-area baseline.
    Baseline,
    /// `real-aa` on the reals (inputs mapped to vertex indices).
    RealAa,
    /// `real-aa` bundled: `k` in-flight instances amortized over one
    /// gradecast wire. Deliberately **not** in [`ProtocolKind::ALL`] so
    /// fixed-seed generator distributions are unchanged; reachable by
    /// name and through the canonical `bundle-k4-*` scenarios.
    BundledRealAa,
}

impl ProtocolKind {
    /// All protocol kinds, in generator order.
    pub const ALL: [ProtocolKind; 4] = [
        ProtocolKind::TreeAaGradecast,
        ProtocolKind::TreeAaHalving,
        ProtocolKind::Baseline,
        ProtocolKind::RealAa,
    ];

    /// The canonical name used in corpus files.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::TreeAaGradecast => "tree-aa-gradecast",
            ProtocolKind::TreeAaHalving => "tree-aa-halving",
            ProtocolKind::Baseline => "baseline",
            ProtocolKind::RealAa => "real-aa",
            ProtocolKind::BundledRealAa => "bundled-real-aa",
        }
    }

    /// Parses a canonical name back into a kind.
    pub fn from_name(name: &str) -> Option<ProtocolKind> {
        if name == ProtocolKind::BundledRealAa.name() {
            return Some(ProtocolKind::BundledRealAa);
        }
        ProtocolKind::ALL.into_iter().find(|p| p.name() == name)
    }
}

/// One primitive adversary behaviour applied to a victim set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdvAtomKind {
    /// Crash-stop the victims at the given round (`>= 1`).
    Crash {
        /// The crash round.
        round: u32,
    },
    /// Selective omission with the given per-message drop probability,
    /// stored in permille so cases stay integer-only.
    Omission {
        /// Drop probability in permille (0..=1000).
        permille: u32,
    },
    /// Protocol-agnostic equivocation (see `sim_net::EquivocatingAdversary`).
    Equivocate,
    /// Rushing flakiness: each round a per-victim coin decides between
    /// forwarding the victim's honest messages and staying silent.
    Flaky,
}

impl AdvAtomKind {
    /// The canonical name used in corpus files.
    pub fn name(&self) -> &'static str {
        match self {
            AdvAtomKind::Crash { .. } => "crash",
            AdvAtomKind::Omission { .. } => "omission",
            AdvAtomKind::Equivocate => "equivocate",
            AdvAtomKind::Flaky => "flaky",
        }
    }
}

/// An adversary atom: a behaviour plus the party indices it controls.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdvAtom {
    /// The behaviour.
    pub kind: AdvAtomKind,
    /// Victim party indices (must be `< n`).
    pub victims: Vec<usize>,
}

/// One scheduled *benign* network fault, from the lockstep-compatible
/// subset of the `sim-net` fault-plan vocabulary. Unlike [`AdvAtom`]s,
/// fault atoms do not consume the Byzantine budget `t`: they model
/// infrastructure failures (outages, netsplits) on top of which the
/// adversary still acts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultAtom {
    /// Cut `side` off from the rest of the network for rounds
    /// `from_round..heal_round` (`u32::MAX` heal = never).
    Partition {
        /// Parties on the severed side of the cut.
        side: Vec<usize>,
        /// First round (1-based) the cut is in effect.
        from_round: u32,
        /// First round the cut is no longer in effect.
        heal_round: u32,
    },
    /// Freeze a party for rounds `crash_round..recover_round`
    /// (`u32::MAX` recover = a permanent crash).
    CrashRecover {
        /// The crashing party.
        party: usize,
        /// First round (1-based) the party is down.
        crash_round: u32,
        /// First round the party is back up.
        recover_round: u32,
    },
}

impl FaultAtom {
    /// The canonical name used in corpus files.
    pub fn name(&self) -> &'static str {
        match self {
            FaultAtom::Partition { .. } => "partition",
            FaultAtom::CrashRecover { .. } => "crash-recover",
        }
    }
}

/// A complete, self-describing fuzz case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FuzzCase {
    /// The master seed the case was derived from (provenance only; the
    /// run itself depends only on the other fields).
    pub seed: u64,
    /// Tree generator parameters.
    pub tree: TreeSpec,
    /// Number of parties.
    pub n: usize,
    /// Corruption budget handed to the engine.
    pub t: usize,
    /// Protocol under test.
    pub protocol: ProtocolKind,
    /// Honest input per party, as a raw index reduced modulo the vertex
    /// count at run time (so shrinking the tree keeps inputs in range).
    pub inputs: Vec<usize>,
    /// Adversary strategy, composed in order.
    pub atoms: Vec<AdvAtom>,
    /// Scheduled benign faults, translated to a `sim-net` [`FaultPlan`]
    /// at run time. Serialized only when non-empty, so fault-free cases
    /// keep their pre-fault canonical JSON (and corpus fingerprints).
    pub faults: Vec<FaultAtom>,
}

impl FuzzCase {
    /// Checks internal consistency: party counts line up, the resilience
    /// condition `3t < n` holds, every victim index is a real party, and
    /// the distinct victims fit in the corruption budget.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.n == 0 {
            return Err("n must be positive".into());
        }
        if 3 * self.t >= self.n {
            return Err(format!(
                "resilience requires 3t < n, got t={}, n={}",
                self.t, self.n
            ));
        }
        if self.inputs.len() != self.n {
            return Err(format!(
                "expected {} inputs, got {}",
                self.n,
                self.inputs.len()
            ));
        }
        let mut victims: Vec<usize> = self
            .atoms
            .iter()
            .flat_map(|a| a.victims.iter().copied())
            .collect();
        victims.sort_unstable();
        victims.dedup();
        if let Some(&v) = victims.iter().find(|&&v| v >= self.n) {
            return Err(format!("victim {} out of range for n={}", v, self.n));
        }
        if victims.len() > self.t {
            return Err(format!(
                "{} distinct victims exceed corruption budget t={}",
                victims.len(),
                self.t
            ));
        }
        for atom in &self.atoms {
            match atom.kind {
                AdvAtomKind::Crash { round: 0 } => {
                    return Err("crash round must be >= 1".into());
                }
                AdvAtomKind::Omission { permille } if permille > 1000 => {
                    return Err(format!("omission permille {permille} > 1000"));
                }
                _ => {}
            }
        }
        self.fault_plan()
            .validate(self.n)
            .map_err(|e| format!("fault plan: {e}"))?;
        Ok(())
    }

    /// Whether the case schedules any benign faults.
    pub fn has_faults(&self) -> bool {
        !self.faults.is_empty()
    }

    /// Translates the fault atoms into a `sim-net` [`FaultPlan`]
    /// (lockstep-compatible by construction: no probabilistic link
    /// faults — those only exist in the asynchronous substrate).
    pub fn fault_plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::none();
        plan.seed = self.seed;
        for fault in &self.faults {
            match fault {
                FaultAtom::Partition {
                    side,
                    from_round,
                    heal_round,
                } => plan.partitions.push(Partition {
                    side: side.clone(),
                    from_round: *from_round,
                    heal_round: *heal_round,
                }),
                FaultAtom::CrashRecover {
                    party,
                    crash_round,
                    recover_round,
                } => plan.crashes.push(CrashFault {
                    party: *party,
                    crash_round: *crash_round,
                    recover_round: *recover_round,
                }),
            }
        }
        plan
    }

    /// The honest input vertices actually used for a tree with `m`
    /// vertices: each stored index reduced modulo `m`.
    pub fn input_vertices(&self, m: usize) -> Vec<usize> {
        self.inputs.iter().map(|&i| i % m).collect()
    }

    /// Serializes the case to its canonical JSON form.
    pub fn to_json(&self) -> Json {
        let atoms = self
            .atoms
            .iter()
            .map(|a| {
                let mut fields = vec![("kind".into(), Json::Str(a.kind.name().into()))];
                match a.kind {
                    AdvAtomKind::Crash { round } => {
                        fields.push(("round".into(), Json::int(u64::from(round))));
                    }
                    AdvAtomKind::Omission { permille } => {
                        fields.push(("permille".into(), Json::int(u64::from(permille))));
                    }
                    AdvAtomKind::Equivocate | AdvAtomKind::Flaky => {}
                }
                fields.push((
                    "victims".into(),
                    Json::Arr(a.victims.iter().map(|&v| Json::int(v as u64)).collect()),
                ));
                Json::Obj(fields)
            })
            .collect();
        // Seeds are full 64-bit values, beyond the 2^53 range a JSON
        // number can carry exactly — stored as decimal strings.
        let mut fields = vec![
            ("seed".into(), Json::Str(self.seed.to_string())),
            (
                "tree".into(),
                Json::Obj(vec![
                    ("family".into(), Json::Str(self.tree.family.name().into())),
                    ("size".into(), Json::int(self.tree.size as u64)),
                    ("seed".into(), Json::Str(self.tree.seed.to_string())),
                ]),
            ),
            ("n".into(), Json::int(self.n as u64)),
            ("t".into(), Json::int(self.t as u64)),
            ("protocol".into(), Json::Str(self.protocol.name().into())),
            (
                "inputs".into(),
                Json::Arr(self.inputs.iter().map(|&i| Json::int(i as u64)).collect()),
            ),
            ("atoms".into(), Json::Arr(atoms)),
        ];
        // Appended last and only when present, so fault-free cases keep
        // the exact bytes (and fingerprints) of the pre-fault format.
        if !self.faults.is_empty() {
            let faults = self
                .faults
                .iter()
                .map(|f| {
                    let mut fields = vec![("kind".into(), Json::Str(f.name().into()))];
                    match f {
                        FaultAtom::Partition {
                            side,
                            from_round,
                            heal_round,
                        } => {
                            fields.push((
                                "side".into(),
                                Json::Arr(side.iter().map(|&v| Json::int(v as u64)).collect()),
                            ));
                            fields.push(("from".into(), Json::int(u64::from(*from_round))));
                            fields.push(("heal".into(), Json::int(u64::from(*heal_round))));
                        }
                        FaultAtom::CrashRecover {
                            party,
                            crash_round,
                            recover_round,
                        } => {
                            fields.push(("party".into(), Json::int(*party as u64)));
                            fields.push(("crash".into(), Json::int(u64::from(*crash_round))));
                            fields.push(("recover".into(), Json::int(u64::from(*recover_round))));
                        }
                    }
                    Json::Obj(fields)
                })
                .collect();
            fields.push(("faults".into(), Json::Arr(faults)));
        }
        Json::Obj(fields)
    }

    /// Deserializes a case from its JSON form.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or malformed field; the
    /// result additionally passes [`FuzzCase::validate`].
    pub fn from_json(json: &Json) -> Result<FuzzCase, String> {
        fn field<'a>(json: &'a Json, key: &str) -> Result<&'a Json, String> {
            json.get(key)
                .ok_or_else(|| format!("missing field `{key}`"))
        }
        /// Seeds are decimal strings (see `to_json`); plain numbers are
        /// accepted too for hand-written corpus files.
        fn seed_value(json: &Json) -> Option<u64> {
            match json {
                Json::Str(s) => s.parse().ok(),
                other => other.as_u64(),
            }
        }
        let tree_json = field(json, "tree")?;
        let family_name = field(tree_json, "family")?
            .as_str()
            .ok_or("tree.family must be a string")?;
        let tree = TreeSpec {
            family: Family::from_name(family_name)
                .ok_or_else(|| format!("unknown tree family `{family_name}`"))?,
            size: field(tree_json, "size")?
                .as_usize()
                .ok_or("tree.size must be a non-negative integer")?,
            seed: seed_value(field(tree_json, "seed")?)
                .ok_or("tree.seed must be a non-negative integer")?,
        };
        let protocol_name = field(json, "protocol")?
            .as_str()
            .ok_or("protocol must be a string")?;
        let inputs = field(json, "inputs")?
            .as_arr()
            .ok_or("inputs must be an array")?
            .iter()
            .map(|v| v.as_usize().ok_or("inputs must be integers"))
            .collect::<Result<Vec<_>, _>>()?;
        let mut atoms = Vec::new();
        for atom_json in field(json, "atoms")?
            .as_arr()
            .ok_or("atoms must be an array")?
        {
            let kind_name = field(atom_json, "kind")?
                .as_str()
                .ok_or("atom.kind must be a string")?;
            let kind = match kind_name {
                "crash" => AdvAtomKind::Crash {
                    round: field(atom_json, "round")?
                        .as_u64()
                        .ok_or("crash.round must be an integer")? as u32,
                },
                "omission" => AdvAtomKind::Omission {
                    permille: field(atom_json, "permille")?
                        .as_u64()
                        .ok_or("omission.permille must be an integer")?
                        as u32,
                },
                "equivocate" => AdvAtomKind::Equivocate,
                "flaky" => AdvAtomKind::Flaky,
                other => return Err(format!("unknown atom kind `{other}`")),
            };
            let victims = field(atom_json, "victims")?
                .as_arr()
                .ok_or("atom.victims must be an array")?
                .iter()
                .map(|v| v.as_usize().ok_or("victims must be integers"))
                .collect::<Result<Vec<_>, _>>()?;
            atoms.push(AdvAtom { kind, victims });
        }
        // `faults` is optional: absent means none (the pre-fault format).
        let mut faults = Vec::new();
        if let Some(faults_json) = json.get("faults") {
            fn round(obj: &Json, key: &str) -> Result<u32, String> {
                obj.get(key)
                    .and_then(Json::as_u64)
                    .filter(|&v| v <= u64::from(u32::MAX))
                    .map(|v| v as u32)
                    .ok_or_else(|| format!("fault.{key} must be a round number"))
            }
            for fault_json in faults_json.as_arr().ok_or("faults must be an array")? {
                let kind_name = field(fault_json, "kind")?
                    .as_str()
                    .ok_or("fault.kind must be a string")?;
                let fault = match kind_name {
                    "partition" => FaultAtom::Partition {
                        side: field(fault_json, "side")?
                            .as_arr()
                            .ok_or("partition.side must be an array")?
                            .iter()
                            .map(|v| v.as_usize().ok_or("partition.side must be integers"))
                            .collect::<Result<Vec<_>, _>>()?,
                        from_round: round(fault_json, "from")?,
                        heal_round: round(fault_json, "heal")?,
                    },
                    "crash-recover" => FaultAtom::CrashRecover {
                        party: field(fault_json, "party")?
                            .as_usize()
                            .ok_or("crash-recover.party must be an integer")?,
                        crash_round: round(fault_json, "crash")?,
                        recover_round: round(fault_json, "recover")?,
                    },
                    other => return Err(format!("unknown fault kind `{other}`")),
                };
                faults.push(fault);
            }
        }
        let case = FuzzCase {
            seed: seed_value(field(json, "seed")?).ok_or("seed must be a non-negative integer")?,
            tree,
            n: field(json, "n")?.as_usize().ok_or("n must be an integer")?,
            t: field(json, "t")?.as_usize().ok_or("t must be an integer")?,
            protocol: ProtocolKind::from_name(protocol_name)
                .ok_or_else(|| format!("unknown protocol `{protocol_name}`"))?,
            inputs,
            atoms,
            faults,
        };
        case.validate()?;
        Ok(case)
    }

    /// A stable 64-bit fingerprint of the canonical JSON form (FNV-1a),
    /// used as the corpus file name so identical repros dedupe on disk.
    pub fn fingerprint(&self) -> u64 {
        aa_codec::fnv1a_64(self.to_json().to_string().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FuzzCase {
        FuzzCase {
            seed: 42,
            tree: TreeSpec {
                family: Family::Broom,
                size: 9,
                seed: 7,
            },
            n: 7,
            t: 2,
            protocol: ProtocolKind::TreeAaGradecast,
            inputs: vec![0, 3, 8, 1, 5, 2, 60],
            atoms: vec![
                AdvAtom {
                    kind: AdvAtomKind::Crash { round: 2 },
                    victims: vec![1],
                },
                AdvAtom {
                    kind: AdvAtomKind::Equivocate,
                    victims: vec![4],
                },
            ],
            faults: Vec::new(),
        }
    }

    fn faulted_sample() -> FuzzCase {
        let mut case = sample();
        case.faults = vec![
            FaultAtom::Partition {
                side: vec![0, 2],
                from_round: 2,
                heal_round: 4,
            },
            FaultAtom::CrashRecover {
                party: 5,
                crash_round: 3,
                recover_round: u32::MAX,
            },
        ];
        case
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let case = sample();
        let text = case.to_json().to_string();
        let back = FuzzCase::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, case);
        assert_eq!(back.fingerprint(), case.fingerprint());
    }

    #[test]
    fn faulted_json_roundtrip_is_lossless() {
        let case = faulted_sample();
        case.validate().unwrap();
        let text = case.to_json().to_string();
        assert!(text.contains("\"faults\""), "{text}");
        let back = FuzzCase::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, case);
    }

    #[test]
    fn fault_free_cases_keep_the_pre_fault_serialization() {
        // The `faults` key is omitted when empty, so existing corpus
        // files and their FNV fingerprints are unaffected by the new
        // dimension.
        let case = sample();
        let text = case.to_json().to_string();
        assert!(!text.contains("faults"), "{text}");
        assert_ne!(case.fingerprint(), faulted_sample().fingerprint());
    }

    #[test]
    fn fault_plan_translation_and_validation() {
        let case = faulted_sample();
        let plan = case.fault_plan();
        assert_eq!(plan.partitions.len(), 1);
        assert_eq!(plan.crashes.len(), 1);
        assert!(plan.lockstep_compatible());
        assert!(!plan.eventually_connected());
        assert_eq!(plan.permanently_crashed(), vec![5]);

        // Structural problems surface through validate().
        let mut bad = faulted_sample();
        bad.faults.push(FaultAtom::CrashRecover {
            party: 99,
            crash_round: 1,
            recover_round: 2,
        });
        assert!(bad.validate().unwrap_err().contains("fault plan"));

        let mut bad = faulted_sample();
        bad.faults.push(FaultAtom::Partition {
            side: Vec::new(),
            from_round: 1,
            heal_round: 2,
        });
        assert!(bad.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_cases() {
        let mut c = sample();
        c.t = 3; // 3t >= n
        assert!(c.validate().is_err());

        let mut c = sample();
        c.inputs.pop();
        assert!(c.validate().is_err());

        let mut c = sample();
        c.atoms[0].victims = vec![99];
        assert!(c.validate().is_err());

        let mut c = sample();
        c.atoms[0].victims = vec![1, 2, 3]; // 4 distinct victims with atom[1]
        assert!(c.validate().is_err());

        let mut c = sample();
        c.atoms[0].kind = AdvAtomKind::Crash { round: 0 };
        assert!(c.validate().is_err());

        assert!(sample().validate().is_ok());
    }

    #[test]
    fn every_family_builds_a_tree_of_reasonable_size() {
        for family in Family::ALL {
            for size in [2usize, 3, 7, 16, 28] {
                let tree = TreeSpec {
                    family,
                    size,
                    seed: 11,
                }
                .build();
                assert!(
                    tree.vertex_count() >= 2,
                    "{} size {size} built {} vertices",
                    family.name(),
                    tree.vertex_count()
                );
            }
        }
    }

    #[test]
    fn tree_build_is_deterministic() {
        let spec = TreeSpec {
            family: Family::Prufer,
            size: 20,
            seed: 123,
        };
        let a = spec.build();
        let b = spec.build();
        assert_eq!(a.vertex_count(), b.vertex_count());
        for (va, vb) in a.vertices().zip(b.vertices()) {
            assert_eq!(a.label(va), b.label(vb));
            assert_eq!(a.degree(va), b.degree(vb));
            assert_eq!(a.parent(va).is_some(), b.parent(vb).is_some());
        }
    }

    #[test]
    fn inputs_reduce_modulo_vertex_count() {
        let case = sample();
        let m = case.tree.build().vertex_count();
        let vs = case.input_vertices(m);
        assert_eq!(vs.len(), case.n);
        assert!(vs.iter().all(|&v| v < m));
    }

    #[test]
    fn names_roundtrip() {
        for f in Family::ALL {
            assert_eq!(Family::from_name(f.name()), Some(f));
        }
        for p in ProtocolKind::ALL {
            assert_eq!(ProtocolKind::from_name(p.name()), Some(p));
        }
        // Off-generator kind: resolvable by name, absent from ALL.
        assert_eq!(
            ProtocolKind::from_name("bundled-real-aa"),
            Some(ProtocolKind::BundledRealAa)
        );
        assert!(!ProtocolKind::ALL.contains(&ProtocolKind::BundledRealAa));
        assert_eq!(Family::from_name("nope"), None);
    }
}
