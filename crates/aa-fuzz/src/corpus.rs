//! The on-disk corpus of minimized repro cases.
//!
//! Every failing case the fuzzer minimizes is persisted as one JSON file
//! named `case-<fingerprint>.json` under the corpus directory
//! (`fuzz-corpus/` at the workspace root by convention). A `#[test]`
//! replay runner re-executes every corpus file on `cargo test`, so a bug
//! found once by fuzzing becomes a permanent tier-1 regression test.
//!
//! The file format is the canonical [`FuzzCase`] JSON plus a free-form
//! `"reason"` field recording the failure the case originally exposed.
//! Fingerprint-based names dedupe identical repros across runs.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::case::FuzzCase;
use crate::json::Json;

/// A corpus entry: the case plus the recorded failure reason.
#[derive(Clone, Debug, PartialEq)]
pub struct CorpusEntry {
    /// The repro case.
    pub case: FuzzCase,
    /// The failure it originally exposed (free-form, informational).
    pub reason: String,
}

/// The file name a case is stored under.
pub fn file_name(case: &FuzzCase) -> String {
    format!("case-{:016x}.json", case.fingerprint())
}

/// Writes `case` into `dir`, creating the directory if needed. Returns
/// the path written. Identical cases map to the same file name, so
/// re-saving is idempotent.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_case(dir: &Path, case: &FuzzCase, reason: &str) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let Json::Obj(mut fields) = case.to_json() else {
        unreachable!("FuzzCase::to_json always returns an object");
    };
    fields.push(("reason".into(), Json::Str(reason.into())));
    let path = dir.join(file_name(case));
    fs::write(&path, format!("{}\n", Json::Obj(fields)))?;
    Ok(path)
}

/// Reads one corpus file.
///
/// # Errors
///
/// Returns a description naming the file for parse or validation errors.
pub fn load_case(path: &Path) -> Result<CorpusEntry, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let json = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let case = FuzzCase::from_json(&json).map_err(|e| format!("{}: {e}", path.display()))?;
    let reason = json
        .get("reason")
        .and_then(Json::as_str)
        .unwrap_or("")
        .to_string();
    Ok(CorpusEntry { case, reason })
}

/// Loads every `*.json` file of `dir`, sorted by file name so replay
/// order is stable. A missing directory is an empty corpus, not an error.
///
/// # Errors
///
/// Returns the first unreadable or malformed file.
pub fn load_dir(dir: &Path) -> Result<Vec<(PathBuf, CorpusEntry)>, String> {
    if !dir.exists() {
        return Ok(Vec::new());
    }
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|p| load_case(&p).map(|entry| (p, entry)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::{AdvAtom, AdvAtomKind, Family, ProtocolKind, TreeSpec};

    fn sample() -> FuzzCase {
        FuzzCase {
            seed: 77,
            tree: TreeSpec {
                family: Family::Caterpillar,
                size: 6,
                seed: 1,
            },
            n: 4,
            t: 1,
            protocol: ProtocolKind::RealAa,
            inputs: vec![0, 1, 2, 3],
            atoms: vec![AdvAtom {
                kind: AdvAtomKind::Omission { permille: 250 },
                victims: vec![2],
            }],
            faults: Vec::new(),
        }
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join("aa-fuzz-corpus-roundtrip");
        let _ = fs::remove_dir_all(&dir);
        let case = sample();
        let path = save_case(&dir, &case, "validity violated: test").unwrap();
        let entry = load_case(&path).unwrap();
        assert_eq!(entry.case, case);
        assert_eq!(entry.reason, "validity violated: test");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn saving_is_idempotent_and_load_dir_is_sorted() {
        let dir = std::env::temp_dir().join("aa-fuzz-corpus-idem");
        let _ = fs::remove_dir_all(&dir);
        let case = sample();
        save_case(&dir, &case, "first").unwrap();
        save_case(&dir, &case, "second").unwrap();
        let mut other = sample();
        other.seed = 78;
        save_case(&dir, &other, "third").unwrap();
        let entries = load_dir(&dir).unwrap();
        assert_eq!(entries.len(), 2, "identical cases must dedupe by name");
        let names: Vec<_> = entries.iter().map(|(p, _)| p.clone()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_is_an_empty_corpus() {
        let dir = std::env::temp_dir().join("aa-fuzz-corpus-missing-nope");
        assert_eq!(load_dir(&dir).unwrap(), Vec::new());
    }
}
