//! Building a concrete `sim-net` adversary from a case's atom list.
//!
//! Each [`AdvAtom`](crate::case::AdvAtom) maps to one boxed strategy from
//! the sim-net zoo; the atoms are composed in order under the shared
//! corruption budget via [`ComposedAdversary`]. Every randomized strategy
//! gets its own seed derived from the case seed and the atom's position,
//! so the composite is a pure function of the case.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sim_net::{
    ComposedAdversary, CrashAdversary, EquivocatingAdversary, PartyId, Payload, ScriptedAdversary,
    SelectiveOmission,
};

use crate::case::{AdvAtomKind, FuzzCase};

/// Derives the seed for atom `index` of a case: a splitmix64-style mix of
/// the case seed so sibling atoms get decorrelated RNG streams.
fn atom_seed(case_seed: u64, index: usize) -> u64 {
    let mut z = case_seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(index as u64 + 1);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Builds the composite adversary described by `case.atoms`.
///
/// The result is generic over the payload type, so one case spec can
/// attack any of the protocol stacks. Cases must be validated first
/// (victim indices in range, distinct victims within budget) — the
/// underlying strategies `expect` on budget violations.
pub fn build_adversary<M: Payload + 'static>(case: &FuzzCase) -> ComposedAdversary<M> {
    let mut composed = ComposedAdversary::new(Vec::new());
    for (i, atom) in case.atoms.iter().enumerate() {
        let victims: Vec<PartyId> = atom.victims.iter().map(|&v| PartyId(v)).collect();
        let seed = atom_seed(case.seed, i);
        match atom.kind {
            AdvAtomKind::Crash { round } => {
                composed.push(CrashAdversary {
                    crashes: victims.iter().map(|&p| (p, round)).collect(),
                });
            }
            AdvAtomKind::Omission { permille } => {
                composed.push(SelectiveOmission::new(
                    victims,
                    f64::from(permille) / 1000.0,
                    seed,
                ));
            }
            AdvAtomKind::Equivocate => {
                composed.push(EquivocatingAdversary::new(victims, seed));
            }
            AdvAtomKind::Flaky => {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                composed.push(ScriptedAdversary(
                    move |ctx: &mut sim_net::AdversaryCtx<'_, M>| {
                        if ctx.round() == 1 {
                            for &v in &victims {
                                ctx.corrupt(v)
                                    .expect("victim set exceeds corruption budget");
                            }
                        }
                        // Rushing coin per victim per round: forward the honest
                        // tentative messages, or go silent for the round.
                        for &v in &victims {
                            if rng.gen_bool(0.5) {
                                ctx.forward(v);
                            }
                        }
                    },
                ));
            }
        }
    }
    composed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::{AdvAtom, Family, FuzzCase, ProtocolKind, TreeSpec};
    use sim_net::{run_simulation, Inbox, Protocol, RoundCtx, SimConfig};

    /// A trivial protocol: broadcast the round number, output after round 3.
    struct Chatter {
        done: bool,
    }

    impl Protocol for Chatter {
        type Msg = u64;
        type Output = u64;
        fn step(&mut self, round: u32, _inbox: &Inbox<u64>, ctx: &mut RoundCtx<u64>) {
            ctx.broadcast(u64::from(round));
            if round >= 3 {
                self.done = true;
            }
        }
        fn output(&self) -> Option<u64> {
            self.done.then_some(0)
        }
    }

    fn case_with_atoms(atoms: Vec<AdvAtom>, t: usize) -> FuzzCase {
        FuzzCase {
            seed: 5,
            tree: TreeSpec {
                family: Family::Path,
                size: 4,
                seed: 0,
            },
            n: 7,
            t,
            protocol: ProtocolKind::Baseline,
            inputs: vec![0; 7],
            atoms,
            faults: Vec::new(),
        }
    }

    #[test]
    fn all_atom_kinds_build_and_run() {
        let case = case_with_atoms(
            vec![
                AdvAtom {
                    kind: AdvAtomKind::Crash { round: 2 },
                    victims: vec![1],
                },
                AdvAtom {
                    kind: AdvAtomKind::Omission { permille: 500 },
                    victims: vec![1],
                },
                AdvAtom {
                    kind: AdvAtomKind::Equivocate,
                    victims: vec![2],
                },
                AdvAtom {
                    kind: AdvAtomKind::Flaky,
                    victims: vec![1, 2],
                },
            ],
            2,
        );
        case.validate().unwrap();
        let adversary = build_adversary::<u64>(&case);
        let report = run_simulation(
            SimConfig {
                n: case.n,
                t: case.t,
                max_rounds: 10,
            },
            |_, _| Chatter { done: false },
            adversary,
        )
        .unwrap();
        assert!(report.corrupted[1] && report.corrupted[2]);
        assert_eq!(report.corrupted.iter().filter(|&&c| c).count(), 2);
    }

    #[test]
    fn built_adversary_is_deterministic() {
        let case = case_with_atoms(
            vec![AdvAtom {
                kind: AdvAtomKind::Flaky,
                victims: vec![1],
            }],
            1,
        );
        let run = || {
            run_simulation(
                SimConfig {
                    n: case.n,
                    t: case.t,
                    max_rounds: 10,
                },
                |_, _| Chatter { done: false },
                build_adversary::<u64>(&case),
            )
            .unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn atom_seeds_are_decorrelated() {
        let a = atom_seed(42, 0);
        let b = atom_seed(42, 1);
        let c = atom_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, atom_seed(42, 0));
    }
}
