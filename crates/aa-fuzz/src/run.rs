//! Executing a fuzz case and checking the paper's invariants.
//!
//! Every case runs **twice** — once with [`StepMode::Sequential`], once
//! with [`StepMode::Parallel`] — and the two [`RunReport`]s must be equal
//! (the determinism contract from the engine docs). The sequential report
//! is then checked against the machine-checkable guarantees:
//!
//! * **round bound** — `rounds_executed ≤ bound + 1`, where `bound` is the
//!   protocol's publicly computable round count ([`TreeAaConfig::total_rounds`],
//!   [`NowakRybickiConfig::rounds`], [`RealAaConfig::rounds`]) and the `+1`
//!   is the terminal processing round in which parties consume the last
//!   messages and output;
//! * **validity** — every honest output lies in the convex hull (interval,
//!   for `real-aa`) of the honest inputs;
//! * **agreement** — honest outputs are pairwise ≤ 1 apart (≤ ε for
//!   `real-aa`).

use std::fmt;
use std::sync::Arc;

use aa_check::props::{self, PropViolation};
use sim_net::{
    run_simulation_faulted, run_simulation_faulted_traced, run_simulation_traced,
    run_simulation_with, Adversary, EngineConfig, FaultPlan, Metrics, Monitored, Outcome, PartyId,
    Protocol, RunReport, SimConfig, SimError, StepMode, Trace,
};
use tree_aa::{EngineKind, NowakRybickiConfig, NowakRybickiParty, TreeAaConfig, TreeAaParty};
use tree_model::{Tree, VertexId};

use crate::adversary::build_adversary;
use crate::case::{FuzzCase, ProtocolKind};

/// Extra rounds granted beyond the protocol bound before the engine
/// declares the run stuck — generous enough that hitting `max_rounds` is
/// itself evidence of a round-bound violation.
const ROUND_SLACK: u32 = 5;

/// An invariant violated by a run (or a run that failed outright).
#[derive(Clone, Debug, PartialEq)]
pub enum CheckFailure {
    /// The engine rejected or aborted the run.
    Sim(String),
    /// Sequential and parallel stepping produced different reports.
    Determinism,
    /// The run exceeded the protocol's round bound.
    RoundBound {
        /// Rounds the engine actually executed.
        executed: u32,
        /// The public bound (excluding the terminal processing round).
        bound: u32,
    },
    /// An honest output escaped the honest inputs' convex hull.
    Validity(String),
    /// Honest outputs are farther apart than the agreement tolerance.
    Agreement(String),
    /// Sequential and parallel stepping produced byte-different traces
    /// (the flight-recorder determinism contract).
    TraceDeterminism,
    /// A trace-level invariant checker rejected the recorded run, or the
    /// trace's recomputed totals disagree with the engine's metrics.
    TraceInvariant(String),
    /// The degradation contract was violated: a party degraded without a
    /// checkable over-budget certificate, or returned a fully guaranteed
    /// value under a fault plan that provably exceeds the budget.
    Degradation(String),
}

impl fmt::Display for CheckFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckFailure::Sim(reason) => write!(f, "simulation failed: {reason}"),
            CheckFailure::Determinism => {
                f.write_str("sequential and parallel runs produced different reports")
            }
            CheckFailure::RoundBound { executed, bound } => write!(
                f,
                "round bound violated: executed {executed} rounds, bound {bound} (+1 terminal)"
            ),
            CheckFailure::Validity(detail) => write!(f, "validity violated: {detail}"),
            CheckFailure::Agreement(detail) => write!(f, "agreement violated: {detail}"),
            CheckFailure::TraceDeterminism => {
                f.write_str("sequential and parallel runs produced byte-different traces")
            }
            CheckFailure::TraceInvariant(detail) => {
                write!(f, "trace invariant violated: {detail}")
            }
            CheckFailure::Degradation(detail) => {
                write!(f, "degradation contract violated: {detail}")
            }
        }
    }
}

impl std::error::Error for CheckFailure {}

/// Summary statistics of a passing run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CaseStats {
    /// Vertices of the materialized tree.
    pub vertex_count: usize,
    /// Rounds the engine executed.
    pub rounds_executed: u32,
    /// The protocol's public round bound.
    pub round_bound: u32,
    /// Parties the adversary ended up corrupting.
    pub corrupted: usize,
}

/// The result of a traced run: summary statistics plus the flight
/// recording and the metrics of both step modes (equal by the determinism
/// check, but kept separately so accounting tests can assert it).
#[derive(Clone, Debug)]
pub struct TracedCase {
    /// Summary statistics (identical to the untraced [`run_case`] result).
    pub stats: CaseStats,
    /// The recorded trace (byte-identical across both step modes).
    pub trace: Trace,
    /// Metrics of the sequential run.
    pub seq_metrics: Metrics,
    /// Metrics of the parallel run.
    pub par_metrics: Metrics,
}

/// Trace artifacts threaded out of [`run_checked`] when tracing is on.
struct TraceBundle {
    trace: Trace,
    seq_metrics: Metrics,
    par_metrics: Metrics,
}

/// A deliberate bug injected into the checking pipeline — used to
/// mutation-test the harness itself: a fuzzer that cannot catch a planted
/// validity violation is not testing anything.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// No mutation: check the real outputs.
    None,
    /// Replace the first honest output with a value outside the honest
    /// hull (a vertex off the hull, or `max + d + 1` for `real-aa`),
    /// simulating a validity bug in the protocol.
    SkewFirstOutput,
}

/// Runs a case and checks every invariant.
///
/// # Errors
///
/// Returns the first [`CheckFailure`] encountered.
pub fn run_case(case: &FuzzCase) -> Result<CaseStats, CheckFailure> {
    run_case_mutated(case, Mutation::None)
}

/// [`run_case`] with a [`Mutation`] applied to the outputs before
/// checking. `Mutation::None` is the production path.
///
/// # Errors
///
/// Returns the first [`CheckFailure`] encountered.
///
/// # Panics
///
/// Panics if `case` fails [`FuzzCase::validate`].
pub fn run_case_mutated(case: &FuzzCase, mutation: Mutation) -> Result<CaseStats, CheckFailure> {
    run_case_impl(case, mutation, false).map(|(stats, _)| stats)
}

/// Runs a case with the flight recorder on: both step modes execute under
/// [`run_simulation_traced`], the two traces must be byte-identical, the
/// trace must pass every [`aa_trace`] invariant checker, and its
/// recomputed totals must equal the engine's [`Metrics`] — all **in
/// addition to** the untraced invariants of [`run_case`].
///
/// # Errors
///
/// Returns the first [`CheckFailure`] encountered.
///
/// # Panics
///
/// Panics if `case` fails [`FuzzCase::validate`].
pub fn run_case_traced(case: &FuzzCase) -> Result<TracedCase, CheckFailure> {
    let (stats, bundle) = run_case_impl(case, Mutation::None, true)?;
    let bundle = bundle.expect("traced run always yields a trace");
    Ok(TracedCase {
        stats,
        trace: bundle.trace,
        seq_metrics: bundle.seq_metrics,
        par_metrics: bundle.par_metrics,
    })
}

fn run_case_impl(
    case: &FuzzCase,
    mutation: Mutation,
    traced: bool,
) -> Result<(CaseStats, Option<TraceBundle>), CheckFailure> {
    case.validate()
        .expect("case must be validated before running");
    let tree = Arc::new(case.tree.build());
    match case.protocol {
        ProtocolKind::TreeAaGradecast => {
            run_tree_aa(case, &tree, EngineKind::Gradecast, mutation, traced)
        }
        ProtocolKind::TreeAaHalving => {
            run_tree_aa(case, &tree, EngineKind::Halving, mutation, traced)
        }
        ProtocolKind::Baseline => run_baseline(case, &tree, mutation, traced),
        ProtocolKind::RealAa => run_real_aa(case, &tree, mutation, traced),
        ProtocolKind::BundledRealAa => run_bundled_real_aa(case, &tree, mutation, traced),
    }
}

/// Runs the protocol under both step modes with freshly built adversaries
/// and checks report equality plus the round bound. With `traced`, both
/// modes run under the flight recorder and the traces are additionally
/// checked for byte-equality, the [`aa_trace`] invariants, and exact
/// agreement with the engine's metrics.
fn run_checked<P, F>(
    case: &FuzzCase,
    bound: u32,
    mut factory: F,
    traced: bool,
) -> Result<(RunReport<P::Output>, Option<TraceBundle>), CheckFailure>
where
    P: Protocol + Send,
    P::Msg: Send + Sync + 'static,
    P::Output: PartialEq + Clone,
    F: FnMut(PartyId, usize) -> P,
{
    let sim = SimConfig {
        n: case.n,
        t: case.t,
        max_rounds: bound + ROUND_SLACK,
    };
    if !traced {
        let mut run = |mode: StepMode| {
            // The adversary is rebuilt per run: its RNG state is part of
            // the strategy, so both runs must start from the same seed.
            let adversary: Box<dyn Adversary<P::Msg>> = Box::new(build_adversary::<P::Msg>(case));
            run_simulation_with(
                EngineConfig {
                    sim,
                    step_mode: mode,
                },
                &mut factory,
                adversary,
            )
        };
        let sequential = run(StepMode::Sequential).map_err(|e| CheckFailure::Sim(describe(&e)))?;
        let parallel =
            run(StepMode::Parallel { threads: 2 }).map_err(|e| CheckFailure::Sim(describe(&e)))?;
        if sequential != parallel {
            return Err(CheckFailure::Determinism);
        }
        check_bound(sequential.rounds_executed, bound)?;
        return Ok((sequential, None));
    }
    let mut run = |mode: StepMode| {
        let adversary: Box<dyn Adversary<P::Msg>> = Box::new(build_adversary::<P::Msg>(case));
        run_simulation_traced(
            EngineConfig {
                sim,
                step_mode: mode,
            },
            &mut factory,
            adversary,
        )
    };
    let (sequential, seq_trace) =
        run(StepMode::Sequential).map_err(|e| CheckFailure::Sim(describe(&e)))?;
    let (parallel, par_trace) =
        run(StepMode::Parallel { threads: 2 }).map_err(|e| CheckFailure::Sim(describe(&e)))?;
    if sequential != parallel {
        return Err(CheckFailure::Determinism);
    }
    if seq_trace.to_canonical_string() != par_trace.to_canonical_string() {
        return Err(CheckFailure::TraceDeterminism);
    }
    check_bound(sequential.rounds_executed, bound)?;
    aa_trace::check_all(&seq_trace).map_err(CheckFailure::TraceInvariant)?;
    let totals = aa_trace::recomputed_totals(&seq_trace);
    let metrics = &sequential.metrics;
    if totals.honest_messages != metrics.honest_messages()
        || totals.messages() != metrics.total_messages()
        || totals.bytes != metrics.total_bytes()
    {
        return Err(CheckFailure::TraceInvariant(format!(
            "trace totals ({}/{}/{}B honest/total/bytes) disagree with engine metrics ({}/{}/{}B)",
            totals.honest_messages,
            totals.messages(),
            totals.bytes,
            metrics.honest_messages(),
            metrics.total_messages(),
            metrics.total_bytes(),
        )));
    }
    let bundle = TraceBundle {
        trace: seq_trace,
        seq_metrics: sequential.metrics.clone(),
        par_metrics: parallel.metrics,
    };
    Ok((sequential, Some(bundle)))
}

/// Runs a *faulted* case under both step modes, with every party wrapped
/// in [`Monitored`] so the output type becomes [`Outcome`]. The
/// determinism and trace-determinism contracts are checked exactly as in
/// [`run_checked`]; the round bound is relaxed by the plan's scheduled
/// extent (rounds frozen by an active fault cannot advance the protocol);
/// and instead of validity/agreement — which benign faults may legitimately
/// weaken — the *degradation contract* is enforced via
/// [`check_degradation`].
///
/// Traced faulted runs keep the round-total bracketing check and the
/// totals-vs-metrics reconciliation (fault events carry no message cost),
/// but skip the hull-monotonicity and grade checkers: a party frozen by a
/// partition can legitimately re-emit a stale iteration value once healed.
#[allow(clippy::type_complexity)]
fn run_checked_faulted<P, F>(
    case: &FuzzCase,
    bound: u32,
    mut factory: F,
    traced: bool,
) -> Result<(RunReport<Outcome<P::Output>>, u32, Option<TraceBundle>), CheckFailure>
where
    P: Protocol + Send,
    P::Msg: Send + Sync + 'static,
    P::Output: PartialEq + Clone,
    F: FnMut(PartyId, usize) -> P,
{
    let plan = case.fault_plan();
    let relaxed = bound + plan.scheduled_extent();
    let sim = SimConfig {
        n: case.n,
        t: case.t,
        max_rounds: relaxed + ROUND_SLACK,
    };
    let mut factory = |id: PartyId, idx: usize| Monitored::new(factory(id, idx), case.n, case.t);
    let (sequential, bundle) = if traced {
        let mut run = |mode: StepMode| {
            let adversary: Box<dyn Adversary<P::Msg>> = Box::new(build_adversary::<P::Msg>(case));
            run_simulation_faulted_traced(
                EngineConfig {
                    sim,
                    step_mode: mode,
                },
                &plan,
                &mut factory,
                adversary,
            )
        };
        let (sequential, seq_trace) =
            run(StepMode::Sequential).map_err(|e| CheckFailure::Sim(describe(&e)))?;
        let (parallel, par_trace) =
            run(StepMode::Parallel { threads: 2 }).map_err(|e| CheckFailure::Sim(describe(&e)))?;
        if sequential != parallel {
            return Err(CheckFailure::Determinism);
        }
        if seq_trace.to_canonical_string() != par_trace.to_canonical_string() {
            return Err(CheckFailure::TraceDeterminism);
        }
        aa_trace::check_round_totals(&seq_trace).map_err(CheckFailure::TraceInvariant)?;
        let totals = aa_trace::recomputed_totals(&seq_trace);
        let metrics = &sequential.metrics;
        if totals.honest_messages != metrics.honest_messages()
            || totals.messages() != metrics.total_messages()
            || totals.bytes != metrics.total_bytes()
        {
            return Err(CheckFailure::TraceInvariant(format!(
                "faulted trace totals ({}/{}/{}B honest/total/bytes) disagree with \
                 engine metrics ({}/{}/{}B)",
                totals.honest_messages,
                totals.messages(),
                totals.bytes,
                metrics.honest_messages(),
                metrics.total_messages(),
                metrics.total_bytes(),
            )));
        }
        let bundle = TraceBundle {
            trace: seq_trace,
            seq_metrics: sequential.metrics.clone(),
            par_metrics: parallel.metrics,
        };
        (sequential, Some(bundle))
    } else {
        let mut run = |mode: StepMode| {
            let adversary: Box<dyn Adversary<P::Msg>> = Box::new(build_adversary::<P::Msg>(case));
            run_simulation_faulted(
                EngineConfig {
                    sim,
                    step_mode: mode,
                },
                &plan,
                &mut factory,
                adversary,
            )
        };
        let sequential = run(StepMode::Sequential).map_err(|e| CheckFailure::Sim(describe(&e)))?;
        let parallel =
            run(StepMode::Parallel { threads: 2 }).map_err(|e| CheckFailure::Sim(describe(&e)))?;
        if sequential != parallel {
            return Err(CheckFailure::Determinism);
        }
        (sequential, None)
    };
    check_bound(sequential.rounds_executed, relaxed)?;
    check_degradation(case, &plan, bound, &sequential)?;
    Ok((sequential, relaxed, bundle))
}

/// The degradation contract, checked on every running honest party:
///
/// * a [`Outcome::Degraded`] outcome must carry a non-empty certificate
///   that actually demonstrates an over-budget fault set;
/// * under a *provably catastrophic* plan — more than `t` parties
///   permanently crashed from round 1, no partitions, and at least one
///   observation round before the decision — no survivor may claim a
///   fully guaranteed [`Outcome::Value`].
///
/// The converse (transient faults must yield `Value`) is deliberately not
/// checked: a conservative monitor may degrade spuriously under a long
/// partition, which is safe.
fn check_degradation<O>(
    case: &FuzzCase,
    plan: &FaultPlan,
    bound: u32,
    report: &RunReport<Outcome<O>>,
) -> Result<(), CheckFailure> {
    let perm_crashed = plan.permanently_crashed().len();
    let catastrophic = perm_crashed > case.t
        && plan.partitions.is_empty()
        && plan
            .crashes
            .iter()
            .all(|c| c.crash_round == 1 && c.recover_round == u32::MAX)
        && bound >= 2;
    for i in 0..case.n {
        if report.corrupted[i] || report.crashed[i] {
            continue;
        }
        let Some(outcome) = &report.outputs[i] else {
            return Err(CheckFailure::Sim(format!(
                "running honest party {i} finished without output"
            )));
        };
        match outcome {
            Outcome::Value(_) => {
                if catastrophic {
                    return Err(CheckFailure::Degradation(format!(
                        "party {i} claims full guarantees although {perm_crashed} parties \
                         (> t = {}) are permanently crashed from round 1",
                        case.t
                    )));
                }
            }
            Outcome::Degraded(_) => {
                props::check_degradation_outcome(i, outcome).map_err(from_prop)?;
            }
        }
    }
    Ok(())
}

/// Maps the shared predicate verdicts onto the fuzz harness's failure
/// vocabulary (which additionally covers sim/determinism/trace failures
/// the shared predicates know nothing about).
fn from_prop(v: PropViolation) -> CheckFailure {
    match v {
        PropViolation::RoundBound { executed, bound } => {
            CheckFailure::RoundBound { executed, bound }
        }
        PropViolation::Validity(detail) => CheckFailure::Validity(detail),
        PropViolation::Agreement(detail) => CheckFailure::Agreement(detail),
        PropViolation::Degradation(detail) => CheckFailure::Degradation(detail),
    }
}

fn check_bound(executed: u32, bound: u32) -> Result<(), CheckFailure> {
    props::check_round_bound(executed, bound).map_err(from_prop)
}

fn describe(e: &SimError) -> String {
    match e {
        SimError::BadConfig { reason } => format!("bad config: {reason}"),
        SimError::MaxRoundsExceeded { max_rounds } => {
            format!("no output after max_rounds = {max_rounds}")
        }
        SimError::BadFaultPlan { reason } => format!("bad fault plan: {reason}"),
    }
}

/// The honest parties' outputs, in party order.
fn honest_outputs<O: Clone>(report: &RunReport<O>) -> Vec<O> {
    props::honest_outputs(&report.outputs, &report.corrupted)
}

fn stats<O>(report: &RunReport<O>, bound: u32, tree: &Tree) -> CaseStats {
    CaseStats {
        vertex_count: tree.vertex_count(),
        rounds_executed: report.rounds_executed,
        round_bound: bound,
        corrupted: report.corrupted.iter().filter(|&&c| c).count(),
    }
}

/// Applies [`Mutation::SkewFirstOutput`] to vertex outputs: swap the
/// first honest output for a vertex off the honest hull (every tree with
/// ≥ 2 vertices has one unless the hull is the whole tree, in which case
/// the farthest vertex from the first output breaks agreement instead).
fn skew_vertex_outputs(tree: &Tree, honest_inputs: &[VertexId], outputs: &mut [VertexId]) {
    let hull = tree.convex_hull(honest_inputs);
    let off_hull = tree.vertices().find(|&v| !hull.contains(v));
    if let Some(v) = off_hull {
        outputs[0] = v;
    } else if let Some(&first) = outputs.first() {
        let far = tree
            .vertices()
            .max_by_key(|&v| tree.distance(first, v))
            .expect("non-empty tree");
        outputs[0] = far;
    }
}

fn check_vertex_outcome(
    tree: &Tree,
    honest_inputs: &[VertexId],
    honest_outputs: &[VertexId],
) -> Result<(), CheckFailure> {
    props::check_vertex_outcome(tree, honest_inputs, honest_outputs).map_err(from_prop)
}

fn run_tree_aa(
    case: &FuzzCase,
    tree: &Arc<Tree>,
    engine: EngineKind,
    mutation: Mutation,
    traced: bool,
) -> Result<(CaseStats, Option<TraceBundle>), CheckFailure> {
    let cfg = TreeAaConfig::new(case.n, case.t, engine, tree).map_err(CheckFailure::Sim)?;
    let bound = cfg.total_rounds();
    let verts: Vec<VertexId> = tree.vertices().collect();
    let inputs: Vec<VertexId> = case
        .input_vertices(verts.len())
        .into_iter()
        .map(|i| verts[i])
        .collect();
    if case.has_faults() {
        let (report, relaxed, bundle) = run_checked_faulted::<TreeAaParty, _>(
            case,
            bound,
            |id, _| TreeAaParty::new(id, cfg.clone(), Arc::clone(tree), inputs[id.index()]),
            traced,
        )?;
        return Ok((stats(&report, relaxed, tree), bundle));
    }
    let (report, bundle) = run_checked::<TreeAaParty, _>(
        case,
        bound,
        |id, _| TreeAaParty::new(id, cfg.clone(), Arc::clone(tree), inputs[id.index()]),
        traced,
    )?;
    let stats = finish_vertex_protocol(tree, &inputs, report, bound, mutation)?;
    Ok((stats, bundle))
}

fn run_baseline(
    case: &FuzzCase,
    tree: &Arc<Tree>,
    mutation: Mutation,
    traced: bool,
) -> Result<(CaseStats, Option<TraceBundle>), CheckFailure> {
    let cfg = NowakRybickiConfig::new(case.n, case.t, tree).map_err(CheckFailure::Sim)?;
    let bound = cfg.rounds();
    let verts: Vec<VertexId> = tree.vertices().collect();
    let inputs: Vec<VertexId> = case
        .input_vertices(verts.len())
        .into_iter()
        .map(|i| verts[i])
        .collect();
    if case.has_faults() {
        let (report, relaxed, bundle) = run_checked_faulted::<NowakRybickiParty, _>(
            case,
            bound,
            |id, _| NowakRybickiParty::new(id, cfg.clone(), Arc::clone(tree), inputs[id.index()]),
            traced,
        )?;
        return Ok((stats(&report, relaxed, tree), bundle));
    }
    let (report, bundle) = run_checked::<NowakRybickiParty, _>(
        case,
        bound,
        |id, _| NowakRybickiParty::new(id, cfg.clone(), Arc::clone(tree), inputs[id.index()]),
        traced,
    )?;
    let stats = finish_vertex_protocol(tree, &inputs, report, bound, mutation)?;
    Ok((stats, bundle))
}

fn finish_vertex_protocol(
    tree: &Tree,
    inputs: &[VertexId],
    report: RunReport<VertexId>,
    bound: u32,
    mutation: Mutation,
) -> Result<CaseStats, CheckFailure> {
    let honest_inputs: Vec<VertexId> = inputs
        .iter()
        .zip(&report.corrupted)
        .filter(|(_, &c)| !c)
        .map(|(&v, _)| v)
        .collect();
    let mut outputs = honest_outputs(&report);
    if mutation == Mutation::SkewFirstOutput {
        skew_vertex_outputs(tree, &honest_inputs, &mut outputs);
    }
    check_vertex_outcome(tree, &honest_inputs, &outputs)?;
    Ok(stats(&report, bound, tree))
}

fn run_real_aa(
    case: &FuzzCase,
    tree: &Arc<Tree>,
    mutation: Mutation,
    traced: bool,
) -> Result<(CaseStats, Option<TraceBundle>), CheckFailure> {
    use real_aa::{RealAaConfig, RealAaParty};
    let m = tree.vertex_count();
    let d = (m - 1) as f64;
    let eps = 1.0;
    let cfg = RealAaConfig::new(case.n, case.t, eps, d).map_err(CheckFailure::Sim)?;
    let bound = cfg.rounds();
    let inputs: Vec<f64> = case
        .input_vertices(m)
        .into_iter()
        .map(|i| i as f64)
        .collect();
    if case.has_faults() {
        let (report, relaxed, bundle) = run_checked_faulted::<RealAaParty, _>(
            case,
            bound,
            |id, _| RealAaParty::new(id, cfg, inputs[id.index()]),
            traced,
        )?;
        return Ok((stats(&report, relaxed, tree), bundle));
    }
    let (report, bundle) = run_checked::<RealAaParty, _>(
        case,
        bound,
        |id, _| RealAaParty::new(id, cfg, inputs[id.index()]),
        traced,
    )?;
    let honest_inputs: Vec<f64> = inputs
        .iter()
        .zip(&report.corrupted)
        .filter(|(_, &c)| !c)
        .map(|(&v, _)| v)
        .collect();
    let mut outputs = honest_outputs(&report);
    if mutation == Mutation::SkewFirstOutput {
        let hi = honest_inputs
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        outputs[0] = hi + d + 1.0;
    }
    props::check_real_outcome(&honest_inputs, &outputs, eps).map_err(from_prop)?;
    Ok((stats(&report, bound, tree), bundle))
}

/// How many instances a `bundled-real-aa` case carries on its one wire.
const BUNDLE_K: usize = 4;

fn run_bundled_real_aa(
    case: &FuzzCase,
    tree: &Arc<Tree>,
    mutation: Mutation,
    traced: bool,
) -> Result<(CaseStats, Option<TraceBundle>), CheckFailure> {
    use real_aa::{BundledAaParty, RealAaConfig};
    let m = tree.vertex_count();
    let d = (m - 1) as f64;
    let eps = 1.0;
    let cfg = RealAaConfig::new(case.n, case.t, eps, d).map_err(CheckFailure::Sim)?;
    let bound = cfg.rounds();
    let base = case.input_vertices(m);
    let n = case.n;
    // Instance j rotates the case's vertex inputs by j: the k bundled
    // instances agree on different values while sharing one wire.
    let inputs_for =
        |p: usize| -> Vec<f64> { (0..BUNDLE_K).map(|j| base[(p + j) % n] as f64).collect() };
    if case.has_faults() {
        let (report, relaxed, bundle) = run_checked_faulted::<BundledAaParty, _>(
            case,
            bound,
            |id, _| BundledAaParty::new(id, cfg, inputs_for(id.index())).expect("k >= 1"),
            traced,
        )?;
        return Ok((stats(&report, relaxed, tree), bundle));
    }
    let (report, bundle) = run_checked::<BundledAaParty, _>(
        case,
        bound,
        |id, _| BundledAaParty::new(id, cfg, inputs_for(id.index())).expect("k >= 1"),
        traced,
    )?;
    let mut outputs = honest_outputs(&report);
    if mutation == Mutation::SkewFirstOutput {
        let hi = (0..n)
            .filter(|&p| !report.corrupted[p])
            .map(|p| inputs_for(p)[0])
            .fold(f64::NEG_INFINITY, f64::max);
        outputs[0][0] = hi + d + 1.0;
    }
    // Every bundled instance must satisfy the RealAA outcome contract
    // independently.
    for j in 0..BUNDLE_K {
        let honest_inputs_j: Vec<f64> = (0..n)
            .filter(|&p| !report.corrupted[p])
            .map(|p| inputs_for(p)[j])
            .collect();
        let outputs_j: Vec<f64> = outputs.iter().map(|o| o[j]).collect();
        props::check_real_outcome(&honest_inputs_j, &outputs_j, eps).map_err(from_prop)?;
    }
    Ok((stats(&report, bound, tree), bundle))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::{AdvAtom, AdvAtomKind, Family, FaultAtom, TreeSpec};

    fn base_case(protocol: ProtocolKind) -> FuzzCase {
        FuzzCase {
            seed: 1,
            tree: TreeSpec {
                family: Family::Caterpillar,
                size: 9,
                seed: 2,
            },
            n: 7,
            t: 2,
            protocol,
            inputs: vec![0, 5, 2, 9, 1, 7, 3],
            atoms: vec![AdvAtom {
                kind: AdvAtomKind::Equivocate,
                victims: vec![3],
            }],
            faults: Vec::new(),
        }
    }

    /// `base_case` without the Byzantine adversary but with a healing
    /// partition and a crash/recovery window — every fault transient, so
    /// the run must terminate within the relaxed bound.
    fn faulted_case(protocol: ProtocolKind) -> FuzzCase {
        let mut case = base_case(protocol);
        case.atoms.clear();
        case.faults = vec![
            FaultAtom::Partition {
                side: vec![0, 1],
                from_round: 2,
                heal_round: 4,
            },
            FaultAtom::CrashRecover {
                party: 4,
                crash_round: 2,
                recover_round: 3,
            },
        ];
        case
    }

    #[test]
    fn every_protocol_passes_under_equivocation() {
        for protocol in ProtocolKind::ALL {
            let case = base_case(protocol);
            let stats =
                run_case(&case).unwrap_or_else(|e| panic!("{} failed: {e}", protocol.name()));
            assert!(stats.rounds_executed <= stats.round_bound + 1);
            assert_eq!(stats.corrupted, 1);
        }
    }

    #[test]
    fn passive_case_passes() {
        let mut case = base_case(ProtocolKind::TreeAaGradecast);
        case.atoms.clear();
        run_case(&case).unwrap();
    }

    #[test]
    fn skew_mutation_is_caught() {
        for protocol in ProtocolKind::ALL {
            let case = base_case(protocol);
            let failure = run_case_mutated(&case, Mutation::SkewFirstOutput)
                .expect_err("mutation must be caught");
            assert!(
                matches!(
                    failure,
                    CheckFailure::Validity(_) | CheckFailure::Agreement(_)
                ),
                "{}: unexpected failure {failure:?}",
                protocol.name()
            );
        }
    }

    #[test]
    fn run_is_reproducible() {
        let case = base_case(ProtocolKind::Baseline);
        assert_eq!(run_case(&case).unwrap(), run_case(&case).unwrap());
    }

    #[test]
    fn traced_run_matches_untraced_and_reconciles_metrics() {
        for protocol in ProtocolKind::ALL {
            let case = base_case(protocol);
            let traced = run_case_traced(&case)
                .unwrap_or_else(|e| panic!("{} traced run failed: {e}", protocol.name()));
            assert_eq!(
                traced.stats,
                run_case(&case).unwrap(),
                "{}",
                protocol.name()
            );
            assert_eq!(traced.seq_metrics, traced.par_metrics);
            let totals = aa_trace::recomputed_totals(&traced.trace);
            assert_eq!(totals.honest_messages, traced.seq_metrics.honest_messages());
            assert_eq!(totals.messages(), traced.seq_metrics.total_messages());
            assert_eq!(totals.bytes, traced.seq_metrics.total_bytes());
        }
    }

    #[test]
    fn traced_run_is_byte_reproducible() {
        let case = base_case(ProtocolKind::TreeAaGradecast);
        let a = run_case_traced(&case).unwrap();
        let b = run_case_traced(&case).unwrap();
        assert_eq!(a.trace.to_canonical_string(), b.trace.to_canonical_string());
        assert_eq!(a.trace.fingerprint(), b.trace.fingerprint());
    }

    #[test]
    fn transient_faults_terminate_for_every_protocol() {
        for protocol in ProtocolKind::ALL {
            let case = faulted_case(protocol);
            let stats =
                run_case(&case).unwrap_or_else(|e| panic!("{} failed: {e}", protocol.name()));
            assert!(
                stats.rounds_executed <= stats.round_bound + 1,
                "{}: executed {} > relaxed bound {} + 1",
                protocol.name(),
                stats.rounds_executed,
                stats.round_bound
            );
        }
    }

    #[test]
    fn faulted_run_is_reproducible() {
        let case = faulted_case(ProtocolKind::Baseline);
        assert_eq!(run_case(&case).unwrap(), run_case(&case).unwrap());
    }

    #[test]
    fn catastrophic_crashes_degrade_every_survivor() {
        // t + 1 permanent crashes from round 1: `check_degradation` inside
        // the faulted runner errors unless every survivor reports
        // `Degraded` with a checkable over-budget certificate, so a plain
        // `unwrap` asserts the whole contract.
        for protocol in ProtocolKind::ALL {
            let mut case = base_case(protocol);
            case.atoms.clear();
            case.faults = (0..=case.t)
                .map(|party| FaultAtom::CrashRecover {
                    party,
                    crash_round: 1,
                    recover_round: u32::MAX,
                })
                .collect();
            run_case(&case).unwrap_or_else(|e| panic!("{} failed: {e}", protocol.name()));
        }
    }

    #[test]
    fn faulted_traced_run_records_fault_events_and_is_byte_reproducible() {
        let case = faulted_case(ProtocolKind::Baseline);
        let a = run_case_traced(&case).unwrap();
        let b = run_case_traced(&case).unwrap();
        assert_eq!(a.trace.to_canonical_string(), b.trace.to_canonical_string());
        let kinds: Vec<_> = a.trace.events.iter().map(|e| &e.kind).collect();
        assert!(
            kinds
                .iter()
                .any(|k| matches!(k, sim_net::EventKind::FaultDrop { .. })),
            "partition left no fault.drop events"
        );
        assert!(
            kinds
                .iter()
                .any(|k| matches!(k, sim_net::EventKind::FaultCrash { party: 4 })),
            "crash of party 4 not recorded"
        );
        assert!(
            kinds
                .iter()
                .any(|k| matches!(k, sim_net::EventKind::FaultRecover { party: 4 })),
            "recovery of party 4 not recorded"
        );
    }

    #[test]
    fn traces_carry_protocol_events() {
        let proto_labels = |case: &FuzzCase| -> std::collections::BTreeSet<String> {
            run_case_traced(case)
                .unwrap()
                .trace
                .events
                .iter()
                .filter_map(|e| match &e.kind {
                    sim_net::EventKind::Proto { event, .. } => Some(event.label.clone()),
                    _ => None,
                })
                .collect()
        };
        let tree_labels = proto_labels(&base_case(ProtocolKind::TreeAaGradecast));
        assert!(tree_labels.contains("treeaa.path"), "{tree_labels:?}");
        assert!(tree_labels.contains("treeaa.out"), "{tree_labels:?}");
        let real_labels = proto_labels(&base_case(ProtocolKind::RealAa));
        assert!(real_labels.contains("gc.grade"), "{real_labels:?}");
        assert!(real_labels.contains("realaa.iter"), "{real_labels:?}");
    }
}
