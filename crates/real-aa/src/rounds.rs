//! Round-complexity formulas (Theorem 3 and Appendix A of the paper).

/// The iteration count `R` used by `RealAA(ε)` on inputs promised to be
/// `D`-close: `R = ⌈(20/9) · log₂ δ / log₂ log₂ δ⌉` with `δ = D/ε`
/// (Appendix A), which guarantees `R^R ≥ δ` and hence final spread
/// `≤ D / R^R ≤ ε`.
///
/// Edge cases, chosen so the guarantee `R^R ≥ δ` always holds:
/// * `δ ≤ 1` (inputs already ε-close): 0 iterations;
/// * small `δ` where `log₂ log₂ δ ≤ 1`: the denominator is clamped to 1.
///
/// # Panics
///
/// Panics if `d < 0`, `eps <= 0`, or either is non-finite.
///
/// # Example
///
/// ```
/// use real_aa::iterations_for;
///
/// assert_eq!(iterations_for(1.0, 2.0), 0);     // already close enough
/// assert!(iterations_for(1024.0, 1.0) >= 5);
/// ```
pub fn iterations_for(d: f64, eps: f64) -> u32 {
    assert!(
        d.is_finite() && d >= 0.0,
        "diameter bound must be finite and >= 0"
    );
    assert!(
        eps.is_finite() && eps > 0.0,
        "epsilon must be finite and positive"
    );
    let delta = d / eps;
    if delta <= 1.0 {
        return 0;
    }
    let lg = delta.log2();
    let lglg = lg.log2().max(1.0);
    let r = ((20.0 / 9.0) * lg / lglg).ceil() as u32;
    r.max(1)
}

/// The paper's stated round bound
/// `R_RealAA(D, ε) = ⌈7 · log₂ δ / log₂ log₂ δ⌉` (Theorem 3), plus 3.
///
/// The `+ 3` accounts for the analysis using a *real-valued* iteration
/// count `(20/9)·log₂ δ / log₂log₂ δ` that an implementation must round up
/// to a whole iteration (3 rounds); the paper's constant-7 statement
/// absorbs this asymptotically. The implemented protocol always satisfies
/// `3 ·`[`iterations_for`]` ≤ rounds_bound`.
pub fn rounds_bound(d: f64, eps: f64) -> u32 {
    assert!(
        d.is_finite() && d >= 0.0,
        "diameter bound must be finite and >= 0"
    );
    assert!(
        eps.is_finite() && eps > 0.0,
        "epsilon must be finite and positive"
    );
    let delta = d / eps;
    if delta <= 1.0 {
        return 0;
    }
    let lg = delta.log2();
    let lglg = lg.log2().max(1.0);
    ((7.0 * lg / lglg).ceil() as u32).max(3) + 3
}

/// Iterations of the classic halving baseline to go from spread `D` to
/// `ε`: `⌈log₂(D/ε)⌉` (each iteration halves the honest range).
pub fn halving_iterations(d: f64, eps: f64) -> u32 {
    assert!(
        d.is_finite() && d >= 0.0,
        "diameter bound must be finite and >= 0"
    );
    assert!(
        eps.is_finite() && eps > 0.0,
        "epsilon must be finite and positive"
    );
    let delta = d / eps;
    if delta <= 1.0 {
        return 0;
    }
    delta.log2().ceil() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_iterations_when_already_close() {
        assert_eq!(iterations_for(0.0, 1.0), 0);
        assert_eq!(iterations_for(0.5, 1.0), 0);
        assert_eq!(rounds_bound(0.5, 1.0), 0);
        assert_eq!(halving_iterations(0.5, 1.0), 0);
    }

    #[test]
    fn guarantee_r_pow_r_at_least_delta() {
        for delta in [1.5, 2.0, 4.0, 10.0, 100.0, 1e4, 1e6, 1e9, 1e12] {
            let r = iterations_for(delta, 1.0) as f64;
            assert!(r.powf(r) >= delta, "R^R = {} < delta = {delta}", r.powf(r));
        }
    }

    #[test]
    fn protocol_rounds_within_stated_bound() {
        for delta in [2.0, 8.0, 64.0, 1e4, 1e8] {
            assert!(
                3 * iterations_for(delta, 1.0) <= rounds_bound(delta, 1.0),
                "3R exceeds the stated bound at delta = {delta}"
            );
        }
    }

    #[test]
    fn grows_sublogarithmically() {
        // The hallmark of round optimality: for large delta, iterations are
        // well below log2(delta).
        let delta = 1e9; // log2 ≈ 29.9
        assert!(iterations_for(delta, 1.0) < 20);
        assert!(halving_iterations(delta, 1.0) == 30);
    }

    #[test]
    fn scale_invariance_in_d_over_eps() {
        assert_eq!(iterations_for(100.0, 1.0), iterations_for(10.0, 0.1));
        assert_eq!(
            halving_iterations(100.0, 1.0),
            halving_iterations(1.0, 0.01)
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_eps_rejected() {
        let _ = iterations_for(1.0, 0.0);
    }
}
