//! The gradecast-based `RealAA` protocol (Theorem 3's building block).

use gradecast::{GcMsg, Grade, ParallelGradecast};
use sim_net::{Inbox, PartyId, Payload, Protocol, RoundCtx};

use crate::multiset::trimmed_mean;
use crate::rounds::iterations_for;
use crate::value::R64;

/// Public parameters of a `RealAA(ε)` execution. All parties must be
/// constructed with identical configs (the parameters are public in the
/// model).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RealAaConfig {
    /// Number of parties.
    pub n: usize,
    /// Corruption bound; the protocol requires `t < n/3`.
    pub t: usize,
    /// Output agreement tolerance ε.
    pub eps: f64,
    /// Public promise: honest inputs are `diameter_bound`-close.
    pub diameter_bound: f64,
    /// When `true`, a party additionally terminates as soon as the spread
    /// of its *accepted* multiset is ≤ ε (sound early stopping: honest
    /// values all carry grade 2, so the accepted spread upper-bounds the
    /// honest spread; once the honest spread is ≤ ε, validity confines all
    /// future honest values — and hence all outputs — to that ε-window).
    pub early_stopping: bool,
    /// When `Some(r)`, run exactly `r` iterations instead of the
    /// [`iterations_for`] formula. Used by convergence experiments that
    /// deliberately under-provision rounds to trace the adversarial
    /// envelope; ε-agreement is only guaranteed when `r` is at least the
    /// formula value.
    pub iterations_override: Option<u32>,
    /// The public constant substituted for leaders whose gradecast was not
    /// accepted (grade 0), keeping every multiset at exactly `n` entries.
    /// Any public value works (at most `t` slots are non-honest, so the
    /// fills are trimmed whenever they are extreme); 0 by default.
    pub fill_value: f64,
    /// **Ablation only — weakens the protocol.** Skip the fill rule and
    /// average the accepted values alone (variable-size multisets). A
    /// planted extreme value then shifts the trim window and the
    /// per-iteration divergence can reach `range/2` instead of
    /// `t_i/(n−2t)`; the `e10_ablations` experiment quantifies it.
    pub ablate_variable_multisets: bool,
    /// **Ablation only — weakens the protocol.** Never mute detected
    /// equivocators. A single Byzantine leader can then cause an
    /// inconsistency in *every* iteration and round optimality is lost;
    /// quantified by `e10_ablations`.
    pub ablate_no_muting: bool,
}

impl RealAaConfig {
    /// Creates a fixed-round configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated precondition if `n ≤ 3t`,
    /// `eps ≤ 0`, or `diameter_bound < 0` (or either is non-finite).
    pub fn new(n: usize, t: usize, eps: f64, diameter_bound: f64) -> Result<Self, String> {
        if n <= 3 * t {
            return Err(format!("RealAA requires n > 3t, got n = {n}, t = {t}"));
        }
        if !eps.is_finite() || eps <= 0.0 {
            return Err(format!("epsilon must be positive and finite, got {eps}"));
        }
        if !diameter_bound.is_finite() || diameter_bound < 0.0 {
            return Err(format!(
                "diameter bound must be finite and >= 0, got {diameter_bound}"
            ));
        }
        Ok(RealAaConfig {
            n,
            t,
            eps,
            diameter_bound,
            early_stopping: false,
            iterations_override: None,
            fill_value: 0.0,
            ablate_variable_multisets: false,
            ablate_no_muting: false,
        })
    }

    /// Enables early stopping (see [`RealAaConfig::early_stopping`]).
    pub fn with_early_stopping(mut self) -> Self {
        self.early_stopping = true;
        self
    }

    /// Fixes the iteration count (see
    /// [`RealAaConfig::iterations_override`]).
    pub fn with_fixed_iterations(mut self, r: u32) -> Self {
        self.iterations_override = Some(r);
        self
    }

    /// Enables the variable-multiset ablation (see
    /// [`RealAaConfig::ablate_variable_multisets`]; weakens the protocol).
    pub fn with_ablated_fill_rule(mut self) -> Self {
        self.ablate_variable_multisets = true;
        self
    }

    /// Enables the no-muting ablation (see
    /// [`RealAaConfig::ablate_no_muting`]; weakens the protocol).
    pub fn with_ablated_muting(mut self) -> Self {
        self.ablate_no_muting = true;
        self
    }

    /// The fixed iteration count `R` of this configuration.
    pub fn iterations(&self) -> u32 {
        self.iterations_override
            .unwrap_or_else(|| iterations_for(self.diameter_bound, self.eps))
    }

    /// Total communication rounds of the fixed-round protocol
    /// (3 per iteration).
    pub fn rounds(&self) -> u32 {
        3 * self.iterations()
    }
}

/// A `RealAA` wire message: a gradecast message tagged with its iteration.
///
/// Messages with tags other than the receiver's current phase are ignored
/// (a Byzantine party gains nothing by replaying across iterations).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RealAaMsg {
    /// Iteration index (0-based).
    pub iter: u32,
    /// The gradecast message body.
    pub body: GcMsg<R64>,
}

impl Payload for RealAaMsg {
    fn size_bytes(&self) -> usize {
        4 + self.body.size_bytes()
    }
}

/// The numeric outcome of one completed iteration.
pub(crate) struct IterationOutcome {
    /// The trimmed mean to adopt; `None` only off the honest path (the
    /// caller keeps its current value, preserving validity).
    pub new_value: Option<f64>,
    /// Minimum accepted value (`+∞` when nothing was accepted).
    pub accepted_lo: f64,
    /// Maximum accepted value (`−∞` when nothing was accepted).
    pub accepted_hi: f64,
}

/// The numeric core of one completed iteration — multiset construction
/// with the fill rule, muting, accepted-range scan, trimmed mean — shared
/// verbatim by [`RealAaParty`] and the batched party so their value
/// trajectories are bit-identical by construction.
///
/// The accepted-range scan and the trimmed-mean sum run through the
/// `aa-kernels` chunked kernels: exact left-to-right/streaming semantics
/// below the dispatch threshold (recorded small-n traces unchanged),
/// auto-vectorized at the n ≥ 1024 scale sizes.
pub(crate) fn apply_iteration(
    cfg: &RealAaConfig,
    outputs: &[gradecast::GradecastOutput<R64>],
    muted: &mut [bool],
) -> IterationOutcome {
    let mut multiset: Vec<f64> = Vec::with_capacity(cfg.n);
    let mut accepted: Vec<f64> = Vec::with_capacity(cfg.n);
    apply_iteration_into(cfg, outputs, muted, &mut multiset, &mut accepted)
}

/// [`apply_iteration`] with caller-owned scratch buffers (cleared here),
/// so the bundled party can run thousands of instances per round without
/// two allocations each. Same math, same code path.
pub(crate) fn apply_iteration_into(
    cfg: &RealAaConfig,
    outputs: &[gradecast::GradecastOutput<R64>],
    muted: &mut [bool],
    multiset: &mut Vec<f64>,
    accepted: &mut Vec<f64>,
) -> IterationOutcome {
    // Build the size-n multiset: one slot per leader, the accepted value
    // for grades >= 1 and the public fill constant otherwise. Keeping
    // every honest multiset at exactly n entries is essential: two honest
    // multisets then differ in at most t_i *replacements* (the leaders
    // burned this iteration), and the trimmed means of equal-size
    // multisets differing in k replacements diverge by at most
    // k * range / (n - 2t) — the envelope behind Theorem 3. (With
    // variable-size multisets, one planted extreme value shifts the whole
    // trim window and the divergence can reach range/2.)
    multiset.clear();
    accepted.clear();
    for (leader, out) in outputs.iter().enumerate() {
        // Acceptance is purely grade-based; muting below only affects
        // future relaying (see crate docs).
        if out.accepted() {
            let v = out.value.expect("accepted implies value").get();
            multiset.push(v);
            accepted.push(v);
        } else if !cfg.ablate_variable_multisets {
            multiset.push(cfg.fill_value);
        }
        if out.grade <= Grade::One && !cfg.ablate_no_muting {
            muted[leader] = true;
        }
    }
    let (accepted_lo, accepted_hi) =
        aa_kernels::min_max_f64(accepted).unwrap_or((f64::INFINITY, f64::NEG_INFINITY));
    IterationOutcome {
        new_value: trimmed_mean(multiset, cfg.t),
        accepted_lo,
        accepted_hi,
    }
}

/// One party of the `RealAA(ε)` protocol.
///
/// Iteration `i` (0-based) occupies rounds `3i+1` (lead), `3i+2` (echo) and
/// `3i+3` (vote); the votes are delivered — and the value updated — at the
/// start of round `3i+4`, which is also the next iteration's lead round, so
/// iterations are seamlessly pipelined and the protocol uses exactly `3R`
/// communication rounds.
#[derive(Clone, Debug)]
pub struct RealAaParty {
    cfg: RealAaConfig,
    me: PartyId,
    value: f64,
    /// Leaders muted so far (carried across iterations).
    muted: Vec<bool>,
    gc: ParallelGradecast<R64>,
    iterations_done: u32,
    output: Option<f64>,
    /// Spread of the accepted multiset in the last completed iteration.
    last_accepted_spread: f64,
    /// Value after each completed iteration (index 0 = input).
    history: Vec<f64>,
}

impl RealAaParty {
    /// Creates the party with its input value.
    ///
    /// # Panics
    ///
    /// Panics if `input` is not finite or `me` is out of range (honest
    /// inputs are real values; a non-finite input is a harness bug).
    pub fn new(me: PartyId, cfg: RealAaConfig, input: f64) -> Self {
        assert!(input.is_finite(), "honest inputs must be finite");
        assert!(me.index() < cfg.n, "party id out of range");
        let muted = vec![false; cfg.n];
        let gc = ParallelGradecast::with_muted(me, cfg.n, cfg.t, muted.clone());
        RealAaParty {
            cfg,
            me,
            value: input,
            muted,
            gc,
            iterations_done: 0,
            output: None,
            last_accepted_spread: f64::INFINITY,
            history: vec![input],
        }
    }

    /// The party's current value (its input before round 1, its running
    /// estimate afterwards).
    pub fn current_value(&self) -> f64 {
        self.value
    }

    /// How many parties this party has muted so far — the observable trace
    /// of Byzantine detection.
    pub fn muted_count(&self) -> usize {
        self.muted.iter().filter(|&&m| m).count()
    }

    /// The party's value trajectory: `history()[0]` is the input,
    /// `history()[i]` the value after iteration `i`. Convergence
    /// experiments read per-iteration contraction factors off this.
    pub fn history(&self) -> &[f64] {
        &self.history
    }

    fn finish_iteration(
        &mut self,
        inbox: &Inbox<RealAaMsg>,
        iter_tag: u32,
        ctx: &mut RoundCtx<RealAaMsg>,
    ) {
        let votes: Vec<(PartyId, GcMsg<R64>)> = inbox
            .iter()
            .filter(|e| e.payload.iter == iter_tag)
            .map(|e| (e.from, e.payload.body.clone()))
            .collect();
        let outputs = self.gc.on_votes(&votes);
        for (leader, out) in outputs.iter().enumerate() {
            ctx.emit_with(|| {
                let mut ev = sim_net::ProtoEvent::new("gc.grade")
                    .u64("iter", u64::from(iter_tag))
                    .u64("leader", leader as u64)
                    .u64("grade", u64::from(out.grade.as_u8()));
                if let Some(v) = out.value {
                    ev = ev.f64("value", v.get());
                }
                ev
            });
        }

        let outcome = apply_iteration(&self.cfg, &outputs, &mut self.muted);
        self.last_accepted_spread = if outcome.accepted_lo.is_finite() {
            outcome.accepted_hi - outcome.accepted_lo
        } else {
            f64::INFINITY
        };
        if let Some(mean) = outcome.new_value {
            self.value = mean;
        }
        // else: unreachable (the multiset always has n > 3t > 2t entries);
        // keeping the current value would preserve validity regardless.
        self.history.push(self.value);
        self.iterations_done += 1;
        ctx.emit_with(|| {
            let mut ev = sim_net::ProtoEvent::new("realaa.iter").u64("iter", u64::from(iter_tag));
            if outcome.accepted_lo.is_finite() {
                ev = ev
                    .f64("lo", outcome.accepted_lo)
                    .f64("hi", outcome.accepted_hi)
                    .f64("spread", outcome.accepted_hi - outcome.accepted_lo);
            }
            ev.f64("value", self.value)
        });
    }

    fn maybe_terminate(&mut self) -> bool {
        let fixed_done = self.iterations_done >= self.cfg.iterations();
        let early = self.cfg.early_stopping
            && self.iterations_done >= 1
            && self.last_accepted_spread <= self.cfg.eps;
        if fixed_done || early {
            self.output = Some(self.value);
            true
        } else {
            false
        }
    }

    fn start_iteration(&mut self, ctx: &mut RoundCtx<RealAaMsg>, iter_tag: u32) {
        self.gc =
            ParallelGradecast::with_muted(self.me, self.cfg.n, self.cfg.t, self.muted.clone());
        for body in self.gc.lead_msgs(R64::new(self.value)) {
            ctx.broadcast(RealAaMsg {
                iter: iter_tag,
                body,
            });
        }
    }
}

impl Protocol for RealAaParty {
    type Msg = RealAaMsg;
    type Output = f64;

    fn step(&mut self, round: u32, inbox: &Inbox<RealAaMsg>, ctx: &mut RoundCtx<RealAaMsg>) {
        if self.output.is_some() {
            return;
        }
        if round == 1 && self.cfg.iterations() == 0 {
            // Inputs are promised ε-close already.
            self.output = Some(self.value);
            return;
        }
        if round > self.cfg.rounds() + 1 {
            // Past the schedule (a benign fault froze us through the
            // decision round): adopt the current value, which never
            // leaves the hull of accepted values.
            self.output = Some(self.value);
            return;
        }
        let phase = (round - 1) % 3;
        let iter_tag = (round - 1) / 3;
        match phase {
            0 => {
                // Finish the previous iteration (if any), then lead the
                // next one.
                if iter_tag > 0 {
                    self.finish_iteration(inbox, iter_tag - 1, ctx);
                    if self.maybe_terminate() {
                        return;
                    }
                }
                self.start_iteration(ctx, iter_tag);
            }
            1 => {
                let leads: Vec<(PartyId, GcMsg<R64>)> = inbox
                    .iter()
                    .filter(|e| e.payload.iter == iter_tag)
                    .map(|e| (e.from, e.payload.body.clone()))
                    .collect();
                for body in self.gc.on_leads(&leads) {
                    ctx.broadcast(RealAaMsg {
                        iter: iter_tag,
                        body,
                    });
                }
            }
            _ => {
                let echoes: Vec<(PartyId, GcMsg<R64>)> = inbox
                    .iter()
                    .filter(|e| e.payload.iter == iter_tag)
                    .map(|e| (e.from, e.payload.body.clone()))
                    .collect();
                for body in self.gc.on_echoes(&echoes) {
                    ctx.broadcast(RealAaMsg {
                        iter: iter_tag,
                        body,
                    });
                }
            }
        }
    }

    fn output(&self) -> Option<f64> {
        self.output
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_net::{run_simulation, CrashAdversary, Passive, SimConfig};

    fn spread(outs: &[f64]) -> f64 {
        let lo = outs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = outs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        hi - lo
    }

    #[test]
    fn message_sizes_are_deep() {
        // 4 iter bytes + the gradecast body's own wire size (which in turn
        // sizes the R64 value at 8 bytes, not size_of::<R64>() shallow).
        let lead = RealAaMsg {
            iter: 0,
            body: GcMsg::Lead(R64::new(1.0)),
        };
        assert_eq!(lead.size_bytes(), 4 + 9);
        let echo = RealAaMsg {
            iter: 3,
            body: GcMsg::Echo(PartyId(2), R64::new(0.5)),
        };
        assert_eq!(echo.size_bytes(), 4 + 13);
    }

    fn run_honest(n: usize, t: usize, eps: f64, d: f64, inputs: &[f64]) -> Vec<f64> {
        let cfg = RealAaConfig::new(n, t, eps, d).unwrap();
        let report = run_simulation(
            SimConfig {
                n,
                t,
                max_rounds: 10 + cfg.rounds(),
            },
            |id, _| RealAaParty::new(id, cfg, inputs[id.index()]),
            Passive,
        )
        .unwrap();
        report.honest_outputs()
    }

    #[test]
    fn all_honest_exact_agreement_after_first_iteration() {
        // With no Byzantine interference the honest range collapses to a
        // point in the very first iteration.
        let outs = run_honest(4, 1, 1.0, 100.0, &[0.0, 100.0, 40.0, 60.0]);
        assert_eq!(spread(&outs), 0.0);
        // Trimmed mean of all four values: drop 0 and 100, mean(40,60).
        assert!((outs[0] - 50.0).abs() < 1e-12);
    }

    #[test]
    fn validity_within_input_range() {
        let inputs = [2.0, 9.0, 5.0, 7.0, 3.0, 8.0, 4.0];
        let outs = run_honest(7, 2, 0.5, 10.0, &inputs);
        for &o in &outs {
            assert!(
                (2.0..=9.0).contains(&o),
                "output {o} escaped the input range"
            );
        }
    }

    #[test]
    fn zero_iteration_config_outputs_inputs() {
        let outs = run_honest(4, 1, 2.0, 1.0, &[0.3, 0.9, 0.5, 0.7]);
        assert_eq!(outs, vec![0.3, 0.9, 0.5, 0.7]);
    }

    #[test]
    fn crash_faults_tolerated() {
        let cfg = RealAaConfig::new(4, 1, 1.0, 8.0).unwrap();
        let inputs = [0.0, 8.0, 2.0, 6.0];
        let report = run_simulation(
            SimConfig {
                n: 4,
                t: 1,
                max_rounds: 10 + cfg.rounds(),
            },
            |id, _| RealAaParty::new(id, cfg, inputs[id.index()]),
            CrashAdversary {
                crashes: vec![(PartyId(1), 2)],
            },
        )
        .unwrap();
        let outs = report.honest_outputs();
        assert!(spread(&outs) <= 1.0);
        for &o in &outs {
            assert!((0.0..=8.0).contains(&o));
        }
    }

    #[test]
    fn early_stopping_halts_after_one_iteration_without_faults() {
        let cfg = RealAaConfig::new(4, 1, 1.0, 1000.0)
            .unwrap()
            .with_early_stopping();
        assert!(cfg.iterations() > 2);
        let inputs = [0.0, 1000.0, 400.0, 600.0];
        let report = run_simulation(
            SimConfig {
                n: 4,
                t: 1,
                max_rounds: 10 + cfg.rounds(),
            },
            |id, _| RealAaParty::new(id, cfg, inputs[id.index()]),
            Passive,
        )
        .unwrap();
        // One full iteration (rounds 1-3) plus the quiet processing round.
        assert_eq!(report.communication_rounds(), 3 + 3);
        // Spread is 0 after iteration 1; parties stop after iteration 2
        // confirms it (accepted spread measured on iteration-1 values is
        // the input spread, which exceeds eps).
        let outs = report.honest_outputs();
        assert_eq!(spread(&outs), 0.0);
    }

    #[test]
    fn fixed_round_count_matches_config() {
        let cfg = RealAaConfig::new(4, 1, 1.0, 64.0).unwrap();
        let inputs = [0.0, 64.0, 10.0, 30.0];
        let report = run_simulation(
            SimConfig {
                n: 4,
                t: 1,
                max_rounds: 10 + cfg.rounds(),
            },
            |id, _| RealAaParty::new(id, cfg, inputs[id.index()]),
            Passive,
        )
        .unwrap();
        assert_eq!(report.communication_rounds(), cfg.rounds());
    }

    #[test]
    fn config_rejects_bad_parameters() {
        assert!(RealAaConfig::new(3, 1, 1.0, 1.0).is_err());
        assert!(RealAaConfig::new(4, 1, 0.0, 1.0).is_err());
        assert!(RealAaConfig::new(4, 1, 1.0, -1.0).is_err());
        assert!(RealAaConfig::new(4, 1, f64::NAN, 1.0).is_err());
    }

    #[test]
    fn identical_inputs_identical_outputs() {
        let outs = run_honest(4, 1, 0.1, 50.0, &[7.0, 7.0, 7.0, 7.0]);
        assert!(outs.iter().all(|&o| o == 7.0));
    }
}

#[cfg(test)]
mod history_tests {
    use super::*;
    use sim_net::{step_standalone, Protocol, Received};

    /// Drive parties manually so the trajectory stays inspectable.
    #[test]
    fn history_records_input_and_every_iteration() {
        let n = 4;
        let cfg = RealAaConfig::new(n, 1, 1.0, 64.0).unwrap();
        let inputs = [0.0, 64.0, 16.0, 48.0];
        let mut parties: Vec<RealAaParty> = (0..n)
            .map(|i| RealAaParty::new(PartyId(i), cfg, inputs[i]))
            .collect();
        let mut inboxes: Vec<Inbox<RealAaMsg>> = (0..n).map(|_| Inbox::empty()).collect();
        for r in 1..=cfg.rounds() + 1 {
            let mut next: Vec<Vec<Received<RealAaMsg>>> = vec![Vec::new(); n];
            for (i, p) in parties.iter_mut().enumerate() {
                let outbox = step_standalone(p, PartyId(i), n, r, &inboxes[i]);
                for env in outbox.envelopes() {
                    next[env.to.index()].push(Received {
                        from: env.from,
                        payload: env.payload,
                    });
                }
            }
            inboxes = next.into_iter().map(Inbox::from_messages).collect();
        }
        for (i, p) in parties.iter().enumerate() {
            assert!(p.output().is_some());
            let h = p.history();
            assert_eq!(h[0], inputs[i]);
            assert_eq!(h.len() as u32, cfg.iterations() + 1);
            // Honest run: iteration 1 collapses everyone to the same
            // trimmed mean, which then persists.
            assert_eq!(h[1], 32.0); // mean of {16, 48} after trimming 0/64
            assert!(h[1..].windows(2).all(|w| w[0] == w[1]));
        }
    }
}
