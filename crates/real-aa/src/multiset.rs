//! Trimmed-multiset reduction rules shared by the AA protocols.

/// Sorts `values` and returns the slice with the `t` lowest and `t`
/// highest entries discarded — the paper's "safe area" computation on ℝ:
/// with at most `t` Byzantine contributions, every survivor lies within
/// the range of the honest contributions.
///
/// Returns an empty slice when `values.len() <= 2t` (the caller must treat
/// that as "keep current value"; it can only happen off the honest path).
pub fn trimmed(values: &mut [f64], t: usize) -> &[f64] {
    values.sort_by(f64::total_cmp);
    if values.len() <= 2 * t {
        &[]
    } else {
        &values[t..values.len() - t]
    }
}

/// The mean of the trimmed multiset (`RealAA`'s update rule), or `None`
/// when trimming leaves nothing.
///
/// The sum runs through [`aa_kernels::sum_f64`]: below the kernel's
/// dispatch threshold it is the exact left-to-right fold this function
/// always used (so recorded traces at small n are unchanged), above it
/// the chunked auto-vectorized association takes over for the n ≥ 1024
/// scale path — deterministically, with the same bits on every host.
pub fn trimmed_mean(values: &mut [f64], t: usize) -> Option<f64> {
    let s = trimmed(values, t);
    if s.is_empty() {
        None
    } else {
        Some(aa_kernels::sum_f64(s) / s.len() as f64)
    }
}

/// The midpoint `(min + max) / 2` of the trimmed multiset (the classic
/// halving rule of Dolev et al.), or `None` when trimming leaves nothing.
pub fn trimmed_midpoint(values: &mut [f64], t: usize) -> Option<f64> {
    let s = trimmed(values, t);
    if s.is_empty() {
        None
    } else {
        Some((s[0] + s[s.len() - 1]) / 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trims_both_tails() {
        let mut v = vec![5.0, -100.0, 1.0, 3.0, 100.0];
        assert_eq!(trimmed(&mut v, 1), &[1.0, 3.0, 5.0]);
    }

    #[test]
    fn trim_zero_keeps_all_sorted() {
        let mut v = vec![2.0, 1.0];
        assert_eq!(trimmed(&mut v, 0), &[1.0, 2.0]);
    }

    #[test]
    fn overtrim_yields_empty() {
        let mut v = vec![1.0, 2.0];
        assert!(trimmed(&mut v, 1).is_empty());
        assert_eq!(trimmed_mean(&mut [1.0, 2.0], 1), None);
        assert_eq!(trimmed_midpoint(&mut [], 0), None);
    }

    #[test]
    fn mean_and_midpoint() {
        let mut v = vec![0.0, 10.0, 2.0, 4.0];
        assert_eq!(trimmed_mean(&mut v.clone(), 1), Some(3.0)); // (2+4)/2
        assert_eq!(trimmed_midpoint(&mut v, 1), Some(3.0));
        let mut w = vec![0.0, 1.0, 5.0];
        assert_eq!(trimmed_mean(&mut w.clone(), 0), Some(2.0));
        assert_eq!(trimmed_midpoint(&mut w, 0), Some(2.5));
    }

    #[test]
    fn outliers_cannot_escape_honest_range() {
        // t = 2 Byzantine extremes on each side; survivors bracketed by the
        // honest values 3..7.
        let mut v = vec![3.0, 4.0, 7.0, -1e9, 1e9, 5.0, 6.0];
        let s = trimmed(&mut v, 2);
        assert!(s.iter().all(|&x| (3.0..=7.0).contains(&x)));
    }
}
