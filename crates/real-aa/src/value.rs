//! Finite, totally ordered real values for use in protocol messages.

use std::fmt;

/// A finite `f64` with a total order — the value type gradecast instances
/// carry for `RealAA`.
///
/// `f64` itself is neither `Eq` nor `Ord` (NaN); protocol values must be
/// finite, so this newtype enforces finiteness at construction and derives
/// its order from [`f64::total_cmp`].
///
/// # Example
///
/// ```
/// use real_aa::R64;
///
/// let a = R64::new(1.5);
/// let b = R64::new(2.0);
/// assert!(a < b);
/// assert_eq!(a.get(), 1.5);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct R64(f64);

impl R64 {
    /// Wraps a finite value.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN or infinite: non-finite values can never be
    /// honest protocol values, and letting them onto the wire would poison
    /// every comparison downstream.
    pub fn new(x: f64) -> Self {
        assert!(x.is_finite(), "protocol values must be finite, got {x}");
        R64(x)
    }

    /// The wrapped value.
    pub fn get(self) -> f64 {
        self.0
    }
}

impl PartialEq for R64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == std::cmp::Ordering::Equal
    }
}

impl Eq for R64 {}

impl PartialOrd for R64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for R64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl std::hash::Hash for R64 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

impl fmt::Display for R64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<R64> for f64 {
    fn from(v: R64) -> f64 {
        v.0
    }
}

impl sim_net::Payload for R64 {
    fn size_bytes(&self) -> usize {
        8
    }
}

impl gradecast::GcValue for R64 {
    /// The IEEE-754 bit pattern — injective on the finite values `R64`
    /// admits, as batched gradecast's tallying requires.
    fn bits64(&self) -> u64 {
        self.0.to_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_f64() {
        assert!(R64::new(-1.0) < R64::new(0.0));
        assert!(R64::new(0.0) < R64::new(1e-9));
        assert_eq!(R64::new(3.0), R64::new(3.0));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_rejected() {
        let _ = R64::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn infinity_rejected() {
        let _ = R64::new(f64::NEG_INFINITY);
    }

    #[test]
    fn usable_in_btreemap() {
        let mut m = std::collections::BTreeMap::new();
        m.insert(R64::new(2.0), "two");
        m.insert(R64::new(1.0), "one");
        let keys: Vec<f64> = m.keys().map(|k| k.get()).collect();
        assert_eq!(keys, vec![1.0, 2.0]);
    }

    #[test]
    fn display_roundtrip() {
        assert_eq!(R64::new(2.5).to_string(), "2.5");
        assert_eq!(f64::from(R64::new(2.5)), 2.5);
    }

    #[test]
    fn wire_size_is_one_f64() {
        use sim_net::Payload;
        assert_eq!(R64::new(1.0).size_bytes(), 8);
    }
}
