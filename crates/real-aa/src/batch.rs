//! The batched-wire `RealAA` party: the n ∈ {1024, 4096} scale path.
//!
//! [`RealAaParty`](crate::RealAaParty) broadcasts one gradecast message
//! per instance per round — n² broadcasts per echo/vote round across the
//! network, O(n³) delivered bytes. [`RealAaBatchParty`] runs the *same*
//! protocol — same round schedule, same grading, muting, fill rule,
//! trimmed-mean update (literally the same shared iteration core, so the
//! value trajectories are bit-identical) — over
//! [`BatchGradecast`]'s struct-of-arrays wire format: one `Arc`-shared
//! batch broadcast per sender per round, quadratic delivered bytes. See
//! `gradecast::batch` for the encoding and the vote-by-hash soundness
//! argument.

use gradecast::{BatchGradecast, GcBatchMsg};
use sim_net::{Inbox, PartyId, Payload, Protocol, RoundCtx};

use crate::real_aa::{apply_iteration, RealAaConfig};
use crate::value::R64;

/// A batched `RealAA` wire message: a gradecast batch tagged with its
/// iteration. Messages with tags other than the receiver's current phase
/// are ignored, exactly like the unbatched wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RealAaBatchMsg {
    /// Iteration index (0-based).
    pub iter: u32,
    /// The batched gradecast body.
    pub body: GcBatchMsg<R64>,
}

impl Payload for RealAaBatchMsg {
    fn size_bytes(&self) -> usize {
        4 + self.body.size_bytes()
    }
}

/// One party of `RealAA(ε)` over the batched wire.
///
/// Iteration pipelining is identical to [`RealAaParty`](crate::RealAaParty):
/// iteration `i` occupies rounds `3i+1..=3i+3`, votes are consumed at the
/// start of round `3i+4`, and the protocol uses exactly `3R` communication
/// rounds. Emits the same `gc.grade` and `realaa.iter` trace events.
#[derive(Clone, Debug)]
pub struct RealAaBatchParty {
    cfg: RealAaConfig,
    me: PartyId,
    value: f64,
    muted: Vec<bool>,
    gc: BatchGradecast<R64>,
    iterations_done: u32,
    output: Option<f64>,
    last_accepted_spread: f64,
    history: Vec<f64>,
}

impl RealAaBatchParty {
    /// Creates the party with its input value.
    ///
    /// # Panics
    ///
    /// As [`RealAaParty::new`](crate::RealAaParty::new): `input` must be
    /// finite and `me` in range.
    pub fn new(me: PartyId, cfg: RealAaConfig, input: f64) -> Self {
        assert!(input.is_finite(), "honest inputs must be finite");
        assert!(me.index() < cfg.n, "party id out of range");
        let muted = vec![false; cfg.n];
        let gc = BatchGradecast::with_muted(me, cfg.n, cfg.t, muted.clone());
        RealAaBatchParty {
            cfg,
            me,
            value: input,
            muted,
            gc,
            iterations_done: 0,
            output: None,
            last_accepted_spread: f64::INFINITY,
            history: vec![input],
        }
    }

    /// The party's current value.
    pub fn current_value(&self) -> f64 {
        self.value
    }

    /// How many parties this party has muted so far.
    pub fn muted_count(&self) -> usize {
        self.muted.iter().filter(|&&m| m).count()
    }

    /// The party's value trajectory (`[0]` = input, `[i]` = value after
    /// iteration `i`).
    pub fn history(&self) -> &[f64] {
        &self.history
    }

    fn finish_iteration(
        &mut self,
        inbox: &Inbox<RealAaBatchMsg>,
        iter_tag: u32,
        ctx: &mut RoundCtx<RealAaBatchMsg>,
    ) {
        let outputs = self.gc.on_votes(
            inbox
                .iter()
                .filter(|e| e.payload.iter == iter_tag)
                .map(|e| (e.from, &e.payload.body)),
        );
        for (leader, out) in outputs.iter().enumerate() {
            ctx.emit_with(|| {
                let mut ev = sim_net::ProtoEvent::new("gc.grade")
                    .u64("iter", u64::from(iter_tag))
                    .u64("leader", leader as u64)
                    .u64("grade", u64::from(out.grade.as_u8()));
                if let Some(v) = out.value {
                    ev = ev.f64("value", v.get());
                }
                ev
            });
        }
        let outcome = apply_iteration(&self.cfg, &outputs, &mut self.muted);
        self.last_accepted_spread = if outcome.accepted_lo.is_finite() {
            outcome.accepted_hi - outcome.accepted_lo
        } else {
            f64::INFINITY
        };
        if let Some(mean) = outcome.new_value {
            self.value = mean;
        }
        self.history.push(self.value);
        self.iterations_done += 1;
        ctx.emit_with(|| {
            let mut ev = sim_net::ProtoEvent::new("realaa.iter").u64("iter", u64::from(iter_tag));
            if outcome.accepted_lo.is_finite() {
                ev = ev
                    .f64("lo", outcome.accepted_lo)
                    .f64("hi", outcome.accepted_hi)
                    .f64("spread", outcome.accepted_hi - outcome.accepted_lo);
            }
            ev.f64("value", self.value)
        });
    }

    fn maybe_terminate(&mut self) -> bool {
        let fixed_done = self.iterations_done >= self.cfg.iterations();
        let early = self.cfg.early_stopping
            && self.iterations_done >= 1
            && self.last_accepted_spread <= self.cfg.eps;
        if fixed_done || early {
            self.output = Some(self.value);
            true
        } else {
            false
        }
    }

    fn start_iteration(&mut self, ctx: &mut RoundCtx<RealAaBatchMsg>, iter_tag: u32) {
        self.gc = BatchGradecast::with_muted(self.me, self.cfg.n, self.cfg.t, self.muted.clone());
        ctx.broadcast(RealAaBatchMsg {
            iter: iter_tag,
            body: self.gc.lead_msg(R64::new(self.value)),
        });
    }
}

impl Protocol for RealAaBatchParty {
    type Msg = RealAaBatchMsg;
    type Output = f64;

    fn step(
        &mut self,
        round: u32,
        inbox: &Inbox<RealAaBatchMsg>,
        ctx: &mut RoundCtx<RealAaBatchMsg>,
    ) {
        if self.output.is_some() {
            return;
        }
        if round == 1 && self.cfg.iterations() == 0 {
            self.output = Some(self.value);
            return;
        }
        if round > self.cfg.rounds() + 1 {
            self.output = Some(self.value);
            return;
        }
        let phase = (round - 1) % 3;
        let iter_tag = (round - 1) / 3;
        let tagged = |tag: u32| {
            inbox
                .iter()
                .filter(move |e| e.payload.iter == tag)
                .map(|e| (e.from, &e.payload.body))
        };
        match phase {
            0 => {
                if iter_tag > 0 {
                    self.finish_iteration(inbox, iter_tag - 1, ctx);
                    if self.maybe_terminate() {
                        return;
                    }
                }
                self.start_iteration(ctx, iter_tag);
            }
            1 => {
                let batch = self.gc.on_leads(tagged(iter_tag));
                ctx.broadcast(RealAaBatchMsg {
                    iter: iter_tag,
                    body: batch,
                });
            }
            _ => {
                let batch = self.gc.on_echoes(tagged(iter_tag));
                ctx.broadcast(RealAaBatchMsg {
                    iter: iter_tag,
                    body: batch,
                });
            }
        }
    }

    fn output(&self) -> Option<f64> {
        self.output
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::real_aa::{RealAaMsg, RealAaParty};
    use gradecast::GcMsg;
    use sim_net::{
        run_simulation, run_simulation_traced, AdversaryCtx, CrashAdversary, EngineConfig,
        EventKind, Passive, SimConfig, StaticByzantine, StepMode,
    };

    fn sim(n: usize, t: usize, rounds: u32) -> SimConfig {
        SimConfig {
            n,
            t,
            max_rounds: 10 + rounds,
        }
    }

    /// Runs compat and batched parties on identical inputs under
    /// adversaries with identical semantics and asserts outputs, rounds,
    /// and protocol-event streams all match.
    fn assert_equivalent<A1, A2>(cfg: RealAaConfig, inputs: &[f64], adv_compat: A1, adv_batch: A2)
    where
        A1: sim_net::Adversary<RealAaMsg>,
        A2: sim_net::Adversary<RealAaBatchMsg>,
    {
        let (compat, compat_trace) = run_simulation_traced(
            EngineConfig::from(sim(cfg.n, cfg.t, cfg.rounds())),
            |id, _| RealAaParty::new(id, cfg, inputs[id.index()]),
            adv_compat,
        )
        .unwrap();
        let (batched, batched_trace) = run_simulation_traced(
            EngineConfig::from(sim(cfg.n, cfg.t, cfg.rounds())),
            |id, _| RealAaBatchParty::new(id, cfg, inputs[id.index()]),
            adv_batch,
        )
        .unwrap();
        assert_eq!(compat.outputs, batched.outputs);
        assert_eq!(compat.rounds_executed, batched.rounds_executed);
        assert_eq!(compat.corrupted, batched.corrupted);
        // The wire differs (that's the point) but the protocol-level
        // event streams — grades, iteration summaries — must be
        // identical, which also pins the value trajectories.
        let protos = |tr: &sim_net::Trace| {
            tr.events
                .iter()
                .filter(|e| matches!(e.kind, EventKind::Proto { .. }))
                .cloned()
                .collect::<Vec<_>>()
        };
        assert_eq!(protos(&compat_trace), protos(&batched_trace));
    }

    #[test]
    fn equivalent_to_compat_all_honest() {
        let cfg = RealAaConfig::new(7, 2, 0.5, 10.0).unwrap();
        let inputs = [2.0, 9.0, 5.0, 7.0, 3.0, 8.0, 4.0];
        assert_equivalent(cfg, &inputs, Passive, Passive);
    }

    #[test]
    fn equivalent_to_compat_under_crashes() {
        let cfg = RealAaConfig::new(7, 2, 0.5, 10.0).unwrap();
        let inputs = [2.0, 9.0, 5.0, 7.0, 3.0, 8.0, 4.0];
        let crashes = || CrashAdversary {
            crashes: vec![(PartyId(1), 2), (PartyId(4), 5)],
        };
        assert_equivalent(cfg, &inputs, crashes(), crashes());
    }

    #[test]
    fn equivalent_to_compat_under_lead_equivocation() {
        // Leader 0 equivocates its round-1 lead: 0.0 to the first half,
        // 100.0 to the rest — the same Byzantine behaviour expressed on
        // each wire format.
        let cfg = RealAaConfig::new(7, 2, 0.5, 100.0).unwrap();
        let inputs = [50.0, 20.0, 80.0, 40.0, 60.0, 30.0, 70.0];
        let compat_adv = StaticByzantine {
            parties: vec![PartyId(0)],
            behave: |ctx: &mut AdversaryCtx<'_, RealAaMsg>| {
                if ctx.round() == 1 {
                    for i in 1..7 {
                        let v = if i <= 3 { 0.0 } else { 100.0 };
                        ctx.send(
                            PartyId(0),
                            PartyId(i),
                            RealAaMsg {
                                iter: 0,
                                body: GcMsg::Lead(R64::new(v)),
                            },
                        );
                    }
                }
            },
        };
        let batch_adv = StaticByzantine {
            parties: vec![PartyId(0)],
            behave: |ctx: &mut AdversaryCtx<'_, RealAaBatchMsg>| {
                if ctx.round() == 1 {
                    for i in 1..7 {
                        let v = if i <= 3 { 0.0 } else { 100.0 };
                        ctx.send(
                            PartyId(0),
                            PartyId(i),
                            RealAaBatchMsg {
                                iter: 0,
                                body: GcBatchMsg::Lead(R64::new(v)),
                            },
                        );
                    }
                }
            },
        };
        assert_equivalent(cfg, &inputs, compat_adv, batch_adv);
    }

    #[test]
    fn batched_bytes_at_least_2x_smaller() {
        // The acceptance criterion measured end-to-end through the
        // engine's byte accounting (which the traces reconcile against),
        // not just the per-message arithmetic.
        let n = 64;
        let t = 21;
        let cfg = RealAaConfig::new(n, t, 1.0, 2.0).unwrap();
        let inputs: Vec<f64> = (0..n).map(|i| i as f64 / n as f64).collect();
        let compat = run_simulation(
            sim(n, t, cfg.rounds()),
            |id, _| RealAaParty::new(id, cfg, inputs[id.index()]),
            Passive,
        )
        .unwrap();
        let batched = run_simulation(
            sim(n, t, cfg.rounds()),
            |id, _| RealAaBatchParty::new(id, cfg, inputs[id.index()]),
            Passive,
        )
        .unwrap();
        assert_eq!(compat.outputs, batched.outputs);
        let (old, new) = (compat.metrics.total_bytes(), batched.metrics.total_bytes());
        assert!(
            old >= 2 * new,
            "expected ≥ 2x byte reduction, got {old} vs {new}"
        );
    }

    #[test]
    fn step_modes_agree_with_byte_identical_traces_n256() {
        // Kernel fast paths genuinely engage here: full echo batches at
        // n = 256 take the eq_count sweep and the trimmed slice has
        // n − 2t = 172 ≥ 128 elements, exercising the chunked sum.
        let n = 256;
        let t = 42;
        let cfg = RealAaConfig::new(n, t, 1.0, 2.0).unwrap();
        let inputs: Vec<f64> = (0..n).map(|i| (i % 17) as f64 / 8.0).collect();
        let run = |mode| {
            run_simulation_traced(
                EngineConfig {
                    sim: sim(n, t, cfg.rounds()),
                    step_mode: mode,
                },
                |id, _| RealAaBatchParty::new(id, cfg, inputs[id.index()]),
                CrashAdversary {
                    crashes: vec![(PartyId(3), 2)],
                },
            )
            .unwrap()
        };
        let (ref_report, ref_trace) = run(StepMode::Sequential);
        let ref_bytes = ref_trace.to_canonical_string();
        for mode in [
            StepMode::Parallel { threads: 3 },
            StepMode::Parallel { threads: 0 },
        ] {
            let (report, trace) = run(mode);
            assert_eq!(report, ref_report, "mode {mode:?} diverged");
            assert_eq!(
                trace.to_canonical_string(),
                ref_bytes,
                "mode {mode:?} trace not byte-identical"
            );
        }
        // Trace byte accounting reconciles with the metrics.
        aa_trace::check_round_totals(&ref_trace).unwrap();
        let totals = aa_trace::recomputed_totals(&ref_trace);
        assert_eq!(totals.bytes, ref_report.metrics.total_bytes());
    }

    #[test]
    fn batch_message_sizes_are_deep() {
        use std::sync::Arc;
        // Lead: 4 iter + 1 tag + 8 value.
        let lead = RealAaBatchMsg {
            iter: 0,
            body: GcBatchMsg::Lead(R64::new(1.0)),
        };
        assert_eq!(lead.size_bytes(), 4 + 9);
        // Full 8-slot echo batch: 4 iter + 1 tag + 1 bitmap + 8 × 8.
        let echoes = RealAaBatchMsg {
            iter: 1,
            body: GcBatchMsg::Echoes(Arc::new(gradecast::GcSlots::from_options(
                (0..8).map(|i| Some(R64::new(i as f64))).collect(),
            ))),
        };
        assert_eq!(echoes.size_bytes(), 4 + 1 + 1 + 64);
    }
}
