//! The bundled `RealAA` party: k in-flight instances over one wire.
//!
//! [`RealAaBatchParty`](crate::RealAaBatchParty) amortizes gradecast
//! framing across the n *leaders* of one AA instance;
//! [`BundledAaParty`] amortizes it across k concurrent *instances* as
//! well. Every round each party broadcasts **one**
//! [`GcBundleMsg`] whose outer slots range over instances (absent =
//! that instance already terminated here), so the per-round message
//! count — and, over real sockets, the syscall count — is that of a
//! single instance no matter how many are in flight.
//!
//! # Equivalence
//!
//! Instance `j` of a bundle is driven by its own
//! [`BatchGradecast`](gradecast::BatchGradecast) core and its own
//! muted set, value, history, and early-stopping state, all fed through
//! the literal [`apply_iteration`] shared with the standalone parties.
//! The differential suite in `tests/bundle_equiv.rs` checks the
//! resulting guarantee end to end: outputs, round counts, hull
//! trajectories, and per-instance trace events (keyed by the `inst`
//! field) are bit-identical to running each instance alone under
//! honest, crash, equivocating, and scheduled-fault adversaries, in
//! both engine step modes.
//!
//! # Async wiring
//!
//! The party also implements [`AsyncProtocol`] as a timer-paced
//! lockstep adapter: each message's round is recomputed from its
//! content (`Leads` → 3i+1, `Echoes` → 3i+2, `Votes` → 3i+3), arrivals
//! are buffered per round, and a local round timer — one and a half
//! delay bounds, so every in-round send lands before the next tick —
//! drives the same `step` function the synchronous engine calls. Late
//! arrivals are omissions, exactly the synchronous model's reading, so
//! `Reliable<BundledAaParty>` runs unchanged over the real sockets in
//! `crates/net`.

use std::collections::BTreeMap;

use async_net::{AsyncCtx, AsyncProtocol};
use gradecast::{BundleGradecast, GcBundleMsg, GradecastOutput};
use sim_net::{Envelope, Inbox, PartyId, Payload, Protocol, Received, RoundCtx};

use crate::real_aa::{apply_iteration_into, RealAaConfig};
use crate::value::R64;

pub use gradecast::BundleError;

/// A bundled `RealAA` wire message: a gradecast bundle tagged with its
/// iteration, exactly like the batched wire's
/// [`RealAaBatchMsg`](crate::RealAaBatchMsg).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BundledAaMsg {
    /// Iteration index (0-based).
    pub iter: u32,
    /// The bundled gradecast body.
    pub body: GcBundleMsg<R64>,
}

impl Payload for BundledAaMsg {
    fn size_bytes(&self) -> usize {
        4 + self.body.size_bytes()
    }
}

/// The normalized round length of the async lockstep adapter. Delays
/// are normalized to (0, 1], so any message sent at a round boundary
/// arrives strictly before the next tick fires.
const ROUND_LEN: f64 = 1.5;

/// The wire round a bundled message belongs to, recomputed from its
/// content (phase within the 3-round iteration).
fn wire_round(msg: &BundledAaMsg) -> u32 {
    3 * msg.iter
        + match msg.body {
            GcBundleMsg::Leads(_) => 1,
            GcBundleMsg::Echoes(_) => 2,
            GcBundleMsg::Votes(_) => 3,
        }
}

/// One party running k bundled `RealAA(ε)` instances in lockstep.
///
/// All instances share the configuration and the round schedule of
/// [`RealAaBatchParty`](crate::RealAaBatchParty) — iteration `i`
/// occupies rounds `3i+1..=3i+3` — but each advances its own value,
/// muted set, and (with [`RealAaConfig::early_stopping`]) its own
/// termination round. The party outputs once every instance has.
#[derive(Clone, Debug)]
pub struct BundledAaParty {
    cfg: RealAaConfig,
    me: PartyId,
    values: Vec<f64>,
    muted: Vec<Vec<bool>>,
    gc: BundleGradecast<R64>,
    iterations_done: u32,
    outputs: Vec<Option<f64>>,
    last_accepted_spread: Vec<f64>,
    histories: Vec<Vec<f64>>,
    output: Option<Vec<f64>>,
    /// Async adapter: the last round stepped (0 before `on_start`).
    async_round: u32,
    /// Async adapter: arrivals bucketed by wire round, consumed when the
    /// following round's timer fires.
    async_buf: BTreeMap<u32, Vec<Received<BundledAaMsg>>>,
    /// Reused per-instance grading buffer (round 3i+4 grades k
    /// instances; allocating k vectors per iteration dominates the
    /// amortized throughput at large k).
    grade_buf: Vec<GradecastOutput<R64>>,
    /// Reused multiset scratch for [`apply_iteration_into`].
    multiset_buf: Vec<f64>,
    /// Reused accepted-values scratch for [`apply_iteration_into`].
    accepted_buf: Vec<f64>,
}

impl BundledAaParty {
    /// Creates the party with one input value per bundled instance
    /// (`k = inputs.len()`).
    ///
    /// # Errors
    ///
    /// [`BundleError::Empty`] if `inputs` is empty.
    ///
    /// # Panics
    ///
    /// As [`RealAaParty::new`](crate::RealAaParty::new): every input
    /// must be finite and `me` in range.
    pub fn new(me: PartyId, cfg: RealAaConfig, inputs: Vec<f64>) -> Result<Self, BundleError> {
        assert!(
            inputs.iter().all(|v| v.is_finite()),
            "honest inputs must be finite"
        );
        assert!(me.index() < cfg.n, "party id out of range");
        let k = inputs.len();
        let muted = vec![vec![false; cfg.n]; k];
        let gc = BundleGradecast::with_muted(me, cfg.n, cfg.t, muted.clone())?;
        Ok(BundledAaParty {
            cfg,
            me,
            histories: inputs.iter().map(|&v| vec![v]).collect(),
            values: inputs,
            muted,
            gc,
            iterations_done: 0,
            outputs: vec![None; k],
            last_accepted_spread: vec![f64::INFINITY; k],
            output: None,
            async_round: 0,
            async_buf: BTreeMap::new(),
            grade_buf: Vec::new(),
            multiset_buf: Vec::new(),
            accepted_buf: Vec::new(),
        })
    }

    /// Number of bundled instances.
    pub fn k(&self) -> usize {
        self.values.len()
    }

    /// Current values, one per instance.
    pub fn current_values(&self) -> &[f64] {
        &self.values
    }

    /// Instance `inst`'s value trajectory (`[0]` = input).
    ///
    /// # Panics
    ///
    /// Panics if `inst >= k`.
    pub fn history(&self, inst: usize) -> &[f64] {
        &self.histories[inst]
    }

    /// How many parties instance `inst` has muted so far.
    ///
    /// # Panics
    ///
    /// Panics if `inst >= k`.
    pub fn muted_count(&self, inst: usize) -> usize {
        self.muted[inst].iter().filter(|&&m| m).count()
    }

    /// Which instances are still running here.
    fn active(&self) -> Vec<bool> {
        self.outputs.iter().map(Option::is_none).collect()
    }

    fn finish_iteration(
        &mut self,
        inbox: &Inbox<BundledAaMsg>,
        iter_tag: u32,
        ctx: &mut RoundCtx<BundledAaMsg>,
    ) {
        self.gc.absorb_vote_bundles(
            inbox
                .iter()
                .filter(|e| e.payload.iter == iter_tag)
                .map(|e| (e.from, &e.payload.body)),
        );
        // Grade instance by instance into reused scratch buffers — the
        // same grades, events, and numeric updates `on_votes` plus
        // `apply_iteration` would produce, without per-instance
        // allocations.
        let mut outputs_buf = std::mem::take(&mut self.grade_buf);
        let mut multiset = std::mem::take(&mut self.multiset_buf);
        let mut accepted = std::mem::take(&mut self.accepted_buf);
        for inst in 0..self.k() {
            if self.outputs[inst].is_some() {
                continue;
            }
            self.gc.core(inst).grade_into(&mut outputs_buf);
            let outputs = &outputs_buf;
            for (leader, out) in outputs.iter().enumerate() {
                ctx.emit_with(|| {
                    let mut ev = sim_net::ProtoEvent::new("gc.grade")
                        .u64("iter", u64::from(iter_tag))
                        .u64("inst", inst as u64)
                        .u64("leader", leader as u64)
                        .u64("grade", u64::from(out.grade.as_u8()));
                    if let Some(v) = out.value {
                        ev = ev.f64("value", v.get());
                    }
                    ev
                });
            }
            let outcome = apply_iteration_into(
                &self.cfg,
                outputs,
                &mut self.muted[inst],
                &mut multiset,
                &mut accepted,
            );
            self.last_accepted_spread[inst] = if outcome.accepted_lo.is_finite() {
                outcome.accepted_hi - outcome.accepted_lo
            } else {
                f64::INFINITY
            };
            if let Some(mean) = outcome.new_value {
                self.values[inst] = mean;
            }
            self.histories[inst].push(self.values[inst]);
            ctx.emit_with(|| {
                let mut ev = sim_net::ProtoEvent::new("realaa.iter")
                    .u64("iter", u64::from(iter_tag))
                    .u64("inst", inst as u64);
                if outcome.accepted_lo.is_finite() {
                    ev = ev
                        .f64("lo", outcome.accepted_lo)
                        .f64("hi", outcome.accepted_hi)
                        .f64("spread", outcome.accepted_hi - outcome.accepted_lo);
                }
                ev.f64("value", self.values[inst])
            });
        }
        self.grade_buf = outputs_buf;
        self.multiset_buf = multiset;
        self.accepted_buf = accepted;
        self.iterations_done += 1;
    }

    /// Applies each running instance's termination rule; returns true
    /// when the whole bundle has output.
    fn maybe_terminate(&mut self) -> bool {
        let fixed_done = self.iterations_done >= self.cfg.iterations();
        for inst in 0..self.k() {
            if self.outputs[inst].is_some() {
                continue;
            }
            let early = self.cfg.early_stopping
                && self.iterations_done >= 1
                && self.last_accepted_spread[inst] <= self.cfg.eps;
            if fixed_done || early {
                self.outputs[inst] = Some(self.values[inst]);
            }
        }
        if self.outputs.iter().all(Option::is_some) {
            self.output = Some(self.outputs.iter().map(|o| o.expect("all some")).collect());
            true
        } else {
            false
        }
    }

    fn start_iteration(&mut self, ctx: &mut RoundCtx<BundledAaMsg>, iter_tag: u32) {
        self.gc.reset_with_muted(&self.muted);
        let leads = (0..self.k())
            .map(|j| self.outputs[j].is_none().then(|| R64::new(self.values[j])))
            .collect();
        ctx.broadcast(BundledAaMsg {
            iter: iter_tag,
            body: self.gc.lead_msg(leads),
        });
    }
}

impl Protocol for BundledAaParty {
    type Msg = BundledAaMsg;
    type Output = Vec<f64>;

    fn step(&mut self, round: u32, inbox: &Inbox<BundledAaMsg>, ctx: &mut RoundCtx<BundledAaMsg>) {
        if self.output.is_some() {
            return;
        }
        if round == 1 && self.cfg.iterations() == 0 {
            self.output = Some(self.values.clone());
            return;
        }
        if round > self.cfg.rounds() + 1 {
            let finals = (0..self.k())
                .map(|j| self.outputs[j].unwrap_or(self.values[j]))
                .collect();
            self.output = Some(finals);
            return;
        }
        let phase = (round - 1) % 3;
        let iter_tag = (round - 1) / 3;
        let tagged = |tag: u32| {
            inbox
                .iter()
                .filter(move |e| e.payload.iter == tag)
                .map(|e| (e.from, &e.payload.body))
        };
        match phase {
            0 => {
                if iter_tag > 0 {
                    self.finish_iteration(inbox, iter_tag - 1, ctx);
                    if self.maybe_terminate() {
                        return;
                    }
                }
                self.start_iteration(ctx, iter_tag);
            }
            1 => {
                let active = self.active();
                let batch = self.gc.on_leads(tagged(iter_tag), &active);
                ctx.broadcast(BundledAaMsg {
                    iter: iter_tag,
                    body: batch,
                });
            }
            _ => {
                let active = self.active();
                let batch = self.gc.on_echoes(tagged(iter_tag), &active);
                ctx.broadcast(BundledAaMsg {
                    iter: iter_tag,
                    body: batch,
                });
            }
        }
    }

    fn output(&self) -> Option<Vec<f64>> {
        self.output.clone()
    }
}

impl BundledAaParty {
    /// Drives one synchronous round from the async run loop, replaying
    /// the resulting sends, events, and (unless the party terminated)
    /// the next round's timer into the async context.
    fn run_async_round(
        &mut self,
        round: u32,
        msgs: Vec<Received<BundledAaMsg>>,
        ctx: &mut AsyncCtx<BundledAaMsg>,
    ) {
        self.async_round = round;
        let inbox = Inbox::from_messages(msgs);
        let mut rctx = if ctx.tracing() {
            RoundCtx::traced(self.me, self.cfg.n)
        } else {
            RoundCtx::new(self.me, self.cfg.n)
        };
        Protocol::step(self, round, &inbox, &mut rctx);
        for ev in rctx.take_events() {
            ctx.emit_with(|| ev);
        }
        let out = rctx.into_outbox();
        for msg in out.broadcasts() {
            ctx.broadcast(msg.clone());
        }
        for env in out.unicasts() {
            ctx.send(env.to, env.payload.clone());
        }
        if self.output.is_none() {
            ctx.set_timer(ROUND_LEN, u64::from(round) + 1);
        }
    }
}

impl AsyncProtocol for BundledAaParty {
    type Msg = BundledAaMsg;
    type Output = Vec<f64>;

    fn on_start(&mut self, ctx: &mut AsyncCtx<BundledAaMsg>) {
        self.run_async_round(1, Vec::new(), ctx);
    }

    fn on_message(&mut self, env: Envelope<BundledAaMsg>, ctx: &mut AsyncCtx<BundledAaMsg>) {
        let _ = ctx;
        let r = wire_round(&env.payload);
        // A round-r message is consumed when stepping round r + 1; once
        // that has happened the arrival is late — an omission, exactly
        // as in the synchronous model.
        if r >= self.async_round {
            self.async_buf.entry(r).or_default().push(Received {
                from: env.from,
                payload: env.payload,
            });
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut AsyncCtx<BundledAaMsg>) {
        if self.output.is_some() || token <= u64::from(self.async_round) {
            return;
        }
        let round = u32::try_from(token).expect("round tokens fit u32");
        let msgs = self.async_buf.remove(&(round - 1)).unwrap_or_default();
        // Older buckets can no longer be consumed; drop them.
        self.async_buf.retain(|&r, _| r >= round);
        self.run_async_round(round, msgs, ctx);
    }

    fn output(&self) -> Option<Vec<f64>> {
        self.output.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use async_net::{run_async, AsyncConfig, DelayModel, PassiveAsync, Reliable, SilentAsync};
    use sim_net::{run_simulation, Passive, SimConfig};

    fn cfg(n: usize, t: usize) -> RealAaConfig {
        RealAaConfig::new(n, t, 0.5, 10.0).unwrap()
    }

    fn sync_outputs(cfg: RealAaConfig, inputs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        run_simulation(
            SimConfig {
                n: cfg.n,
                t: cfg.t,
                max_rounds: 10 + cfg.rounds(),
            },
            |id, _| BundledAaParty::new(id, cfg, inputs[id.index()].clone()).unwrap(),
            Passive,
        )
        .unwrap()
        .honest_outputs()
    }

    #[test]
    fn empty_bundle_is_rejected() {
        let err = BundledAaParty::new(PartyId(0), cfg(4, 1), Vec::new()).unwrap_err();
        assert_eq!(err, BundleError::Empty);
    }

    #[test]
    fn bundle_of_one_matches_the_batched_party() {
        let cfg = cfg(7, 2);
        let inputs = [2.0, 9.0, 5.0, 7.0, 3.0, 8.0, 4.0];
        let bundled: Vec<Vec<f64>> =
            sync_outputs(cfg, &inputs.iter().map(|&v| vec![v]).collect::<Vec<_>>());
        let solo = run_simulation(
            SimConfig {
                n: 7,
                t: 2,
                max_rounds: 10 + cfg.rounds(),
            },
            |id, _| crate::RealAaBatchParty::new(id, cfg, inputs[id.index()]),
            Passive,
        )
        .unwrap();
        assert_eq!(
            bundled,
            solo.outputs
                .iter()
                .map(|o| vec![(*o).unwrap()])
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn async_lockstep_matches_the_synchronous_engine() {
        let cfg = cfg(4, 1);
        let inputs: Vec<Vec<f64>> = (0..4).map(|i| vec![i as f64, 10.0 - i as f64]).collect();
        let sync = sync_outputs(cfg, &inputs);
        for seed in [1, 7, 42] {
            let report = run_async(
                AsyncConfig {
                    n: 4,
                    t: 1,
                    seed,
                    delay: DelayModel::Uniform { min: 0.1 },
                    max_events: 200_000,
                },
                |id, _| BundledAaParty::new(id, cfg, inputs[id.index()].clone()).unwrap(),
                PassiveAsync,
            )
            .unwrap();
            assert_eq!(report.honest_outputs(), sync, "seed {seed}");
        }
    }

    #[test]
    fn reliable_wrapper_runs_the_bundle_over_lossy_links() {
        // Reliable<BundledAaParty>: the composition the TCP nodes in
        // crates/net deploy. A crashed-at-start party is within t.
        let cfg = cfg(4, 1);
        let inputs: Vec<Vec<f64>> = (0..4).map(|i| vec![i as f64, (2 * i) as f64]).collect();
        let report = run_async(
            AsyncConfig {
                n: 4,
                t: 1,
                seed: 3,
                delay: DelayModel::Uniform { min: 0.1 },
                max_events: 400_000,
            },
            |id, _| {
                Reliable::new(
                    BundledAaParty::new(id, cfg, inputs[id.index()].clone()).unwrap(),
                    4,
                )
            },
            SilentAsync {
                parties: vec![PartyId(2)],
            },
        )
        .unwrap();
        let outs = report.honest_outputs();
        assert_eq!(outs.len(), 3);
        for inst in 0..2 {
            let vals: Vec<f64> = outs.iter().map(|o| o[inst]).collect();
            let spread = vals.iter().cloned().fold(f64::MIN, f64::max)
                - vals.iter().cloned().fold(f64::MAX, f64::min);
            assert!(spread <= cfg.eps, "instance {inst} spread {spread}");
        }
    }

    #[test]
    fn wire_rounds_follow_the_phase_schedule() {
        let mut party = BundledAaParty::new(PartyId(0), cfg(4, 1), vec![1.0]).unwrap();
        let mut rctx = RoundCtx::new(PartyId(0), 4);
        Protocol::step(&mut party, 1, &Inbox::empty(), &mut rctx);
        let out = rctx.into_outbox();
        assert_eq!(wire_round(&out.broadcasts()[0]), 1);
        let mut rctx = RoundCtx::new(PartyId(0), 4);
        Protocol::step(&mut party, 2, &Inbox::empty(), &mut rctx);
        let out = rctx.into_outbox();
        assert_eq!(wire_round(&out.broadcasts()[0]), 2);
    }
}
