//! The classic iteration-based AA baseline (Dolev et al. [12]): one
//! broadcast round per iteration, trim-and-halve update, `O(log(D/ε))`
//! rounds. `RealAA` is benchmarked against this throughout the experiment
//! harness.

use sim_net::{Inbox, PartyId, Payload, Protocol, RoundCtx};

use crate::multiset::trimmed_midpoint;
use crate::rounds::halving_iterations;

/// Public parameters of the halving baseline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IteratedAaConfig {
    /// Number of parties.
    pub n: usize,
    /// Corruption bound; requires `t < n/3`.
    pub t: usize,
    /// Output agreement tolerance ε.
    pub eps: f64,
    /// Public promise: honest inputs are `diameter_bound`-close.
    pub diameter_bound: f64,
}

impl IteratedAaConfig {
    /// Creates a configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated precondition if `n ≤ 3t`,
    /// `eps ≤ 0`, or `diameter_bound < 0` (or non-finite values).
    pub fn new(n: usize, t: usize, eps: f64, diameter_bound: f64) -> Result<Self, String> {
        if n <= 3 * t {
            return Err(format!("iterated AA requires n > 3t, got n = {n}, t = {t}"));
        }
        if !eps.is_finite() || eps <= 0.0 {
            return Err(format!("epsilon must be positive and finite, got {eps}"));
        }
        if !diameter_bound.is_finite() || diameter_bound < 0.0 {
            return Err(format!(
                "diameter bound must be finite and >= 0, got {diameter_bound}"
            ));
        }
        Ok(IteratedAaConfig {
            n,
            t,
            eps,
            diameter_bound,
        })
    }

    /// Fixed iteration count `⌈log₂(D/ε)⌉` (1 round each).
    pub fn iterations(&self) -> u32 {
        halving_iterations(self.diameter_bound, self.eps)
    }

    /// Total communication rounds (1 per iteration).
    pub fn rounds(&self) -> u32 {
        self.iterations()
    }
}

/// A plain broadcast value message (iteration-tagged so Byzantine replays
/// across iterations are ignored).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlainValueMsg {
    /// Iteration index (0-based).
    pub iter: u32,
    /// The sender's current value.
    pub value: f64,
}

impl Payload for PlainValueMsg {
    fn size_bytes(&self) -> usize {
        4 + 8
    }
}

/// One party of the halving baseline: in each iteration, broadcast the
/// current value, trim the `t` extremes on each side of the received
/// multiset, and move to the midpoint of the survivors. Unlike `RealAA`
/// there is no equivocation detection, so a Byzantine party can perturb
/// *every* iteration — which is exactly why this protocol cannot beat a
/// per-iteration halving and needs `Θ(log(D/ε))` rounds.
#[derive(Clone, Debug)]
pub struct IteratedAaParty {
    cfg: IteratedAaConfig,
    value: f64,
    iterations_done: u32,
    output: Option<f64>,
}

impl IteratedAaParty {
    /// Creates the party with its input value.
    ///
    /// # Panics
    ///
    /// Panics if `input` is not finite or `me` is out of range.
    pub fn new(me: PartyId, cfg: IteratedAaConfig, input: f64) -> Self {
        assert!(input.is_finite(), "honest inputs must be finite");
        assert!(me.index() < cfg.n, "party id out of range");
        IteratedAaParty {
            cfg,
            value: input,
            iterations_done: 0,
            output: None,
        }
    }

    /// The party's running estimate.
    pub fn current_value(&self) -> f64 {
        self.value
    }
}

impl Protocol for IteratedAaParty {
    type Msg = PlainValueMsg;
    type Output = f64;

    fn step(
        &mut self,
        round: u32,
        inbox: &Inbox<PlainValueMsg>,
        ctx: &mut RoundCtx<PlainValueMsg>,
    ) {
        if self.output.is_some() {
            return;
        }
        if round == 1 && self.cfg.iterations() == 0 {
            self.output = Some(self.value);
            return;
        }
        if round > self.cfg.rounds() + 1 {
            // Past the schedule (a benign fault froze us through the
            // decision round): adopt the current value, which never
            // leaves the hull of accepted values.
            self.output = Some(self.value);
            return;
        }
        // Round r delivers iteration r-2's values (round 1 delivers
        // nothing) and sends iteration r-1's.
        if round >= 2 {
            let iter_tag = round - 2;
            // Keep one value per sender for this iteration (first wins).
            let mut seen = vec![false; self.cfg.n];
            let mut values = Vec::with_capacity(self.cfg.n);
            for e in inbox {
                if e.payload.iter == iter_tag
                    && e.payload.value.is_finite()
                    && !seen[e.from.index()]
                {
                    seen[e.from.index()] = true;
                    values.push(e.payload.value);
                }
            }
            if let Some(mid) = trimmed_midpoint(&mut values, self.cfg.t) {
                self.value = mid;
            }
            self.iterations_done += 1;
            ctx.emit_with(|| {
                sim_net::ProtoEvent::new("halving.iter")
                    .u64("iter", u64::from(iter_tag))
                    .f64("value", self.value)
            });
            if self.iterations_done >= self.cfg.iterations() {
                self.output = Some(self.value);
                return;
            }
        }
        ctx.broadcast(PlainValueMsg {
            iter: round - 1,
            value: self.value,
        });
    }

    fn output(&self) -> Option<f64> {
        self.output
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_net::{run_simulation, AdversaryCtx, Passive, SimConfig, StaticByzantine};

    fn spread(outs: &[f64]) -> f64 {
        let lo = outs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = outs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        hi - lo
    }

    #[test]
    fn message_size_is_iter_plus_value() {
        assert_eq!(
            PlainValueMsg {
                iter: 0,
                value: 1.5
            }
            .size_bytes(),
            12
        );
    }

    #[test]
    fn converges_all_honest() {
        let cfg = IteratedAaConfig::new(4, 1, 1.0, 64.0).unwrap();
        let inputs = [0.0, 64.0, 16.0, 48.0];
        let report = run_simulation(
            SimConfig {
                n: 4,
                t: 1,
                max_rounds: cfg.rounds() + 5,
            },
            |id, _| IteratedAaParty::new(id, cfg, inputs[id.index()]),
            Passive,
        )
        .unwrap();
        let outs = report.honest_outputs();
        assert!(spread(&outs) <= 1.0);
        for &o in &outs {
            assert!((0.0..=64.0).contains(&o));
        }
        assert_eq!(report.communication_rounds(), cfg.rounds());
    }

    #[test]
    fn uses_one_round_per_iteration() {
        let cfg = IteratedAaConfig::new(4, 1, 1.0, 1024.0).unwrap();
        assert_eq!(cfg.rounds(), 10); // log2(1024)
    }

    #[test]
    fn equivocating_byzantine_cannot_break_validity_or_agreement() {
        let cfg = IteratedAaConfig::new(4, 1, 1.0, 8.0).unwrap();
        let inputs = [0.0, 8.0, 4.0, 999.0]; // p3 corrupted below
        let adv = StaticByzantine {
            parties: vec![PartyId(3)],
            behave: |ctx: &mut AdversaryCtx<'_, PlainValueMsg>| {
                let iter = ctx.round() - 1;
                // Send +inf-like extremes: high to p0, low to p1.
                ctx.send(PartyId(3), PartyId(0), PlainValueMsg { iter, value: 1e12 });
                ctx.send(PartyId(3), PartyId(1), PlainValueMsg { iter, value: -1e12 });
                ctx.send(PartyId(3), PartyId(2), PlainValueMsg { iter, value: 1e12 });
            },
        };
        let report = run_simulation(
            SimConfig {
                n: 4,
                t: 1,
                max_rounds: cfg.rounds() + 5,
            },
            |id, _| IteratedAaParty::new(id, cfg, inputs[id.index()]),
            adv,
        )
        .unwrap();
        let outs = report.honest_outputs();
        assert!(spread(&outs) <= 1.0, "spread {} too large", spread(&outs));
        for &o in &outs {
            assert!((0.0..=8.0).contains(&o), "validity violated: {o}");
        }
    }

    #[test]
    fn nonfinite_byzantine_values_are_dropped() {
        let cfg = IteratedAaConfig::new(4, 1, 1.0, 4.0).unwrap();
        let inputs = [0.0, 4.0, 2.0, 2.0];
        let adv = StaticByzantine {
            parties: vec![PartyId(3)],
            behave: |ctx: &mut AdversaryCtx<'_, PlainValueMsg>| {
                let iter = ctx.round() - 1;
                ctx.broadcast(
                    PartyId(3),
                    PlainValueMsg {
                        iter,
                        value: f64::NAN,
                    },
                );
            },
        };
        let report = run_simulation(
            SimConfig {
                n: 4,
                t: 1,
                max_rounds: cfg.rounds() + 5,
            },
            |id, _| IteratedAaParty::new(id, cfg, inputs[id.index()]),
            adv,
        )
        .unwrap();
        let outs = report.honest_outputs();
        assert!(spread(&outs) <= 1.0);
        for &o in &outs {
            assert!(o.is_finite() && (0.0..=4.0).contains(&o));
        }
    }
}
