//! Byzantine strategies against the real-valued AA protocols.
//!
//! The centerpiece is [`BudgetSplitEquivocator`], the strategy that
//! realizes the worst-case convergence envelope of Theorem 1/Lemma 5
//! against `RealAA`: it spends its corruption budget `t` across iterations
//! according to a schedule `(t_1, …, t_R)`, burning `t_i` fresh Byzantine
//! leaders in iteration `i` on engineered `{0, 1}` grade splits that make
//! one half of the honest parties accept an extreme value that the other
//! half rejects. Each burned leader is detected (and silenced) by *all*
//! honest parties, so the spread after `R` iterations tracks
//! `D · Π tᵢ / (n − 2t)^R` — maximized by the near-equal split
//! `tᵢ ≈ t/R`, which is exactly the supremum in Fekete's bound.

use rand::Rng;
use rand_chacha::ChaCha8Rng;

use gradecast::GcMsg;
use sim_net::{Adversary, AdversaryCtx, PartyId};

use crate::real_aa::RealAaMsg;
use crate::value::R64;

/// Splits `budget` into `rounds` near-equal positive parts (the maximizer
/// of `Π tᵢ` under `Σ tᵢ ≤ budget`, restricted to using every iteration).
/// When `budget < rounds`, only the first `budget` iterations get one unit
/// each.
///
/// # Example
///
/// ```
/// use real_aa::adversary::equal_split_schedule;
///
/// assert_eq!(equal_split_schedule(7, 3), vec![3, 2, 2]);
/// assert_eq!(equal_split_schedule(2, 4), vec![1, 1, 0, 0]);
/// ```
pub fn equal_split_schedule(budget: usize, rounds: usize) -> Vec<usize> {
    if rounds == 0 {
        return Vec::new();
    }
    let base = budget / rounds;
    let extra = budget % rounds;
    (0..rounds).map(|i| base + usize::from(i < extra)).collect()
}

/// The Fekete-envelope adversary against [`crate::RealAaParty`].
///
/// Construction takes the statically corrupted set and a per-iteration
/// burn schedule; see the module docs for the strategy. Unburned corrupted
/// parties behave honestly (their tentative traffic is forwarded), both to
/// preserve their budget — a party that deviates detectably is silenced —
/// and to serve as echo/vote helpers for the engineered splits.
#[derive(Clone, Debug)]
pub struct BudgetSplitEquivocator {
    byz: Vec<PartyId>,
    schedule: Vec<usize>,
    next_fresh: usize,
    /// Plans for the iteration currently being attacked:
    /// `(leader, accepting_group, value)`.
    plans: Vec<(PartyId, Vec<PartyId>, f64)>,
    honest: Vec<PartyId>,
    low_group: Vec<PartyId>,
    high_group: Vec<PartyId>,
    /// The protocol's public fill constant (see
    /// `RealAaConfig::fill_value`), which the full-information adversary
    /// uses to predict the honest update rule exactly.
    fill_value: f64,
    /// Attack the same leaders every scheduled iteration instead of
    /// burning fresh ones — only useful against the no-muting ablation,
    /// where detection has no consequences.
    reuse_leaders: bool,
    /// Predict the ablated (variable-multiset) update rule instead of the
    /// fill rule.
    model_variable_multisets: bool,
}

impl BudgetSplitEquivocator {
    /// Creates the adversary.
    ///
    /// # Panics
    ///
    /// Panics if the schedule spends more than `byz.len()` leaders in
    /// total, or if `byz` is empty while the schedule is not all-zero.
    pub fn new(n: usize, byz: Vec<PartyId>, schedule: Vec<usize>) -> Self {
        let spend: usize = schedule.iter().sum();
        assert!(
            spend <= byz.len(),
            "schedule spends {spend} leaders but only {} are corrupted",
            byz.len()
        );
        let honest: Vec<PartyId> = (0..n).map(PartyId).filter(|p| !byz.contains(p)).collect();
        let half = honest.len() / 2;
        BudgetSplitEquivocator {
            low_group: honest[..half].to_vec(),
            high_group: honest[half..].to_vec(),
            honest,
            byz,
            schedule,
            next_fresh: 0,
            plans: Vec::new(),
            fill_value: 0.0,
            reuse_leaders: false,
            model_variable_multisets: false,
        }
    }

    /// Creates a leader-reusing variant: the *same* leaders attack every
    /// scheduled iteration. Only effective against the no-muting ablation
    /// (the real protocol silences them after their first split). The
    /// schedule may spend more than `byz.len()` in total, but no single
    /// iteration may use more leaders than are corrupted.
    ///
    /// # Panics
    ///
    /// Panics if some iteration's burn count exceeds `byz.len()`.
    pub fn new_reusing(n: usize, byz: Vec<PartyId>, schedule: Vec<usize>) -> Self {
        let per_iter = schedule.iter().copied().max().unwrap_or(0);
        assert!(
            per_iter <= byz.len(),
            "iteration burns {per_iter} leaders but only {} are corrupted",
            byz.len()
        );
        let mut adv = Self::new(n, byz, vec![]);
        adv.schedule = schedule;
        adv.reuse_leaders = true;
        adv
    }

    /// Predicts the variable-multiset (ablated) honest update rule.
    pub fn modeling_variable_multisets(mut self) -> Self {
        self.model_variable_multisets = true;
        self
    }

    /// Sets the fill constant assumed for the honest update rule (must
    /// match `RealAaConfig::fill_value`; defaults to 0).
    pub fn with_fill(mut self, fill_value: f64) -> Self {
        self.fill_value = fill_value;
        self
    }

    fn plan_iteration(&mut self, iter: usize, ctx: &AdversaryCtx<'_, RealAaMsg>, t: usize) {
        self.plans.clear();
        let burn = self.schedule.get(iter).copied().unwrap_or(0);
        if burn == 0 {
            return;
        }
        // Reconstruct the common base multiset M of this iteration: every
        // honest party accepts (at grade 2) the leads of all honest parties
        // and of all still-honest-behaving corrupted parties. Burned
        // leaders are muted by everyone; the leaders about to be burned
        // have their leads replaced below.
        let start = if self.reuse_leaders {
            0
        } else {
            self.next_fresh
        };
        let fresh: Vec<PartyId> = self.byz[start..].iter().copied().take(burn).collect();
        let mut base: Vec<f64> = Vec::new();
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for p in (0..ctx.n()).map(PartyId) {
            if fresh.contains(&p) {
                continue; // handled as per-group extras below
            }
            if self.byz[..self.next_fresh].contains(&p) && !self.reuse_leaders {
                // Burned earlier: silenced. Under the fill rule every
                // honest party substitutes the public constant; under the
                // ablated rule the slot simply disappears.
                if !self.model_variable_multisets {
                    base.push(self.fill_value);
                }
                continue;
            }
            let mut led = false;
            let outbox = ctx.tentative_outbox(p);
            let payloads = outbox
                .broadcasts()
                .iter()
                .chain(outbox.unicasts().iter().map(|e| &e.payload));
            for msg in payloads {
                if let GcMsg::Lead(v) = &msg.body {
                    base.push(v.get());
                    led = true;
                    if self.honest.contains(&p) {
                        lo = lo.min(v.get());
                        hi = hi.max(v.get());
                    }
                    break;
                }
            }
            if !led && !self.model_variable_multisets {
                base.push(self.fill_value); // terminated party: graded 0
            }
        }
        if fresh.is_empty() || !lo.is_finite() || !hi.is_finite() {
            return; // honest parties are silent (terminated); nothing to do
        }
        if !self.reuse_leaders {
            self.next_fresh += fresh.len();
        }

        // Choose, for each fresh leader, a target group (the honest half
        // that will accept) and a planted value, maximizing the divergence
        // of the two groups' trimmed means. The adversary has full
        // information, so it simply evaluates the update rule. Candidate
        // values: the honest extremes and far-out values (which survive as
        // extra copies of the multiset's edge elements after trimming).
        let spanwidth = (hi - lo).max(1.0);
        let candidates = [lo, hi, lo - 4.0 * spanwidth, hi + 4.0 * spanwidth];
        let options: Vec<(bool, f64)> = candidates
            .iter()
            .flat_map(|&x| [(true, x), (false, x)])
            .collect();

        let fill = self.fill_value;
        let variable = self.model_variable_multisets;
        let eval = |assign: &[(bool, f64)]| -> f64 {
            let mut m_high = base.clone();
            let mut m_low = base.clone();
            for &(to_high, x) in assign {
                if to_high {
                    m_high.push(x);
                    if !variable {
                        m_low.push(fill);
                    }
                } else {
                    if !variable {
                        m_high.push(fill);
                    }
                    m_low.push(x);
                }
            }
            match (
                crate::multiset::trimmed_mean(&mut m_high, t),
                crate::multiset::trimmed_mean(&mut m_low, t),
            ) {
                (Some(a), Some(b)) => (a - b).abs(),
                _ => 0.0,
            }
        };

        let mut best: Vec<(bool, f64)> = vec![options[0]; fresh.len()];
        let mut best_score = eval(&best);
        if fresh.len() <= 3 {
            // Exhaustive search over per-leader assignments.
            let k = options.len();
            let total = k.pow(fresh.len() as u32);
            for code in 0..total {
                let mut c = code;
                let assign: Vec<(bool, f64)> = (0..fresh.len())
                    .map(|_| {
                        let o = options[c % k];
                        c /= k;
                        o
                    })
                    .collect();
                let score = eval(&assign);
                if score > best_score {
                    best_score = score;
                    best = assign;
                }
            }
        } else {
            // All leaders share the best single option.
            for &opt in &options {
                let assign = vec![opt; fresh.len()];
                let score = eval(&assign);
                if score > best_score {
                    best_score = score;
                    best = assign;
                }
            }
        }

        for (j, &leader) in fresh.iter().enumerate() {
            let (to_high, x) = best[j];
            let group = if to_high {
                self.high_group.clone()
            } else {
                self.low_group.clone()
            };
            self.plans.push((leader, group, x));
        }
    }
}

impl Adversary<RealAaMsg> for BudgetSplitEquivocator {
    fn round(&mut self, ctx: &mut AdversaryCtx<'_, RealAaMsg>) {
        if ctx.round() == 1 {
            for &b in &self.byz.clone() {
                ctx.corrupt(b).expect("static set within budget");
            }
        }
        let iter = ((ctx.round() - 1) / 3) as usize;
        let phase = (ctx.round() - 1) % 3;
        let c = self.byz.len();
        let n = ctx.n();
        let t = ctx.t();

        if phase == 0 {
            self.plan_iteration(iter, ctx, t);
        }

        // Forward every corrupted machine's honest behaviour, except the
        // leads of leaders being burned this iteration (replaced below).
        let burning: Vec<PartyId> = self.plans.iter().map(|&(q, _, _)| q).collect();
        for &b in &self.byz.clone() {
            if phase == 0 && burning.contains(&b) {
                continue;
            }
            ctx.forward(b);
        }

        match phase {
            0 => {
                // Selective leads: value x to the first n - t - c honest
                // parties only.
                let s_size = n.saturating_sub(t + c).min(self.honest.len());
                let s: Vec<PartyId> = self.honest[..s_size].to_vec();
                for (q, _, x) in self.plans.clone() {
                    for &p in &s {
                        ctx.send(
                            q,
                            p,
                            RealAaMsg {
                                iter: iter as u32,
                                body: GcMsg::Lead(R64::new(x)),
                            },
                        );
                    }
                }
            }
            1 => {
                // Echo top-up: every corrupted party echoes x to the
                // designated honest voters V (|V| = t + 1 - c members of
                // the accepting group).
                let v_size = (t + 1).saturating_sub(c).max(1);
                for (q, group, x) in self.plans.clone() {
                    let voters: Vec<PartyId> = group.iter().copied().take(v_size).collect();
                    for &b in &self.byz.clone() {
                        for &v in &voters {
                            ctx.send(
                                b,
                                v,
                                RealAaMsg {
                                    iter: iter as u32,
                                    body: GcMsg::Echo(q, R64::new(x)),
                                },
                            );
                        }
                    }
                }
            }
            _ => {
                // Vote top-up: every corrupted party votes x toward the
                // whole accepting group, lifting it to t + 1 votes (grade
                // 1) while the other group sees at most t.
                for (q, group, x) in self.plans.clone() {
                    for &b in &self.byz.clone() {
                        for &a in &group {
                            ctx.send(
                                b,
                                a,
                                RealAaMsg {
                                    iter: iter as u32,
                                    body: GcMsg::Vote(q, R64::new(x)),
                                },
                            );
                        }
                    }
                }
            }
        }
    }
}

/// A chaos adversary for `RealAA`: statically corrupts a set and sprays
/// random, arbitrarily tagged gradecast messages with values drawn from
/// around the honest input range. Used by the property tests: whatever it
/// does, validity and ε-agreement must hold.
#[derive(Clone, Debug)]
pub struct RealAaChaos {
    byz: Vec<PartyId>,
    rng: ChaCha8Rng,
    /// Values are sampled uniformly from this range (deliberately wider
    /// than any honest range to probe validity).
    pub value_range: (f64, f64),
}

impl RealAaChaos {
    /// Creates the adversary with its own deterministic RNG.
    pub fn new(byz: Vec<PartyId>, seed: u64, value_range: (f64, f64)) -> Self {
        use rand::SeedableRng;
        RealAaChaos {
            byz,
            rng: ChaCha8Rng::seed_from_u64(seed),
            value_range,
        }
    }
}

impl Adversary<RealAaMsg> for RealAaChaos {
    fn round(&mut self, ctx: &mut AdversaryCtx<'_, RealAaMsg>) {
        if ctx.round() == 1 {
            for &b in &self.byz.clone() {
                ctx.corrupt(b).expect("static set within budget");
            }
        }
        let n = ctx.n();
        let byz = self.byz.clone();
        for &b in &byz {
            let bursts = self.rng.gen_range(0..2 * n);
            for _ in 0..bursts {
                let to = PartyId(self.rng.gen_range(0..n));
                let leader = PartyId(self.rng.gen_range(0..n));
                let (lo, hi) = self.value_range;
                let x = R64::new(self.rng.gen_range(lo..=hi));
                // Tags near the plausible current iteration, sometimes off.
                let iter = ((ctx.round() - 1) / 3).saturating_sub(self.rng.gen_range(0..2))
                    + self.rng.gen_range(0..2u32);
                let body = match self.rng.gen_range(0..3) {
                    0 => GcMsg::Lead(x),
                    1 => GcMsg::Echo(leader, x),
                    _ => GcMsg::Vote(leader, x),
                };
                ctx.send(b, to, RealAaMsg { iter, body });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::real_aa::{RealAaConfig, RealAaParty};
    use sim_net::{run_simulation, SimConfig};

    fn spread(outs: &[f64]) -> f64 {
        let lo = outs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = outs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        hi - lo
    }

    #[test]
    fn equal_split_examples() {
        assert_eq!(equal_split_schedule(6, 3), vec![2, 2, 2]);
        assert_eq!(equal_split_schedule(5, 3), vec![2, 2, 1]);
        assert_eq!(equal_split_schedule(0, 2), vec![0, 0]);
        assert_eq!(equal_split_schedule(3, 0), Vec::<usize>::new());
    }

    /// The equivocator burns one leader in iteration 1 against n = 7,
    /// t = 2; the run must preserve validity and ε-agreement, and every
    /// honest party must end up having muted the burned leader.
    #[test]
    fn burned_leader_is_silenced_but_safety_holds() {
        let n = 7;
        let t = 2;
        let cfg = RealAaConfig::new(n, t, 1.0, 100.0).unwrap();
        let byz = vec![PartyId(0), PartyId(1)];
        let adv = BudgetSplitEquivocator::new(n, byz, vec![1, 1]);
        let inputs = [0.0, 0.0, 0.0, 100.0, 30.0, 60.0, 90.0];
        let report = run_simulation(
            SimConfig {
                n,
                t,
                max_rounds: cfg.rounds() + 5,
            },
            |id, _| RealAaParty::new(id, cfg, inputs[id.index()]),
            adv,
        )
        .unwrap();
        let outs = report.honest_outputs();
        assert!(spread(&outs) <= 1.0, "eps-agreement violated: {outs:?}");
        for &o in &outs {
            assert!((0.0..=100.0).contains(&o), "validity violated: {o}");
        }
    }

    /// Against the equivocator the first attacked iteration must actually
    /// produce divergent honest values (otherwise the adversary is a
    /// no-op and the convergence benchmark is meaningless).
    #[test]
    fn split_produces_real_divergence_then_recovers() {
        let n = 7;
        let t = 2;
        // Only one iteration of budget: after it, all honest multisets
        // agree again and the spread collapses to 0 in the next iteration.
        let cfg = RealAaConfig::new(n, t, 1e-9, 100.0).unwrap();
        let byz = vec![PartyId(5), PartyId(6)];
        let adv = BudgetSplitEquivocator::new(n, byz, vec![2]);
        let inputs = [0.0, 25.0, 50.0, 75.0, 100.0, 0.0, 0.0];
        let report = run_simulation(
            SimConfig {
                n,
                t,
                max_rounds: cfg.rounds() + 5,
            },
            |id, _| RealAaParty::new(id, cfg, inputs[id.index()]),
            adv,
        )
        .unwrap();
        let outs = report.honest_outputs();
        // eps is tiny; the protocol still converges because the budget is
        // exhausted after iteration 1 and every later iteration is clean.
        assert!(spread(&outs) <= 1e-9, "final spread {}", spread(&outs));
        for &o in &outs {
            assert!((0.0..=100.0).contains(&o));
        }
    }

    #[test]
    #[should_panic(expected = "schedule spends")]
    fn overspending_schedule_rejected() {
        let _ = BudgetSplitEquivocator::new(7, vec![PartyId(0)], vec![2]);
    }
}
