//! Round-optimal synchronous Byzantine approximate agreement on real
//! values.
//!
//! This crate implements the `RealAA` building block the paper relies on
//! (Theorem 3): the gradecast-based protocol of Ben-Or, Dolev and Hoch,
//! which tolerates `t < n/3` Byzantine parties and, for honest inputs that
//! are `D`-close, reaches `ε`-agreement within
//! `R_RealAA(D, ε) = ⌈7·log₂(D/ε) / log₂log₂(D/ε)⌉` communication rounds —
//! asymptotically matching Fekete's lower bound, in contrast to the
//! `O(log(D/ε))` rounds of the classic halving iteration.
//!
//! # Protocol outline
//!
//! The protocol runs a fixed number of 3-round iterations (the count is the
//! publicly computable [`iterations_for`]). In each iteration every party
//! gradecasts its current value; all `n` gradecasts share the iteration's
//! three rounds (see the [`gradecast`] crate). A party then
//!
//! 1. **accepts** every value with grade ≥ 1 into a multiset (acceptance is
//!    purely grade-based);
//! 2. **mutes** — permanently stops relaying for — every leader whose grade
//!    was ≤ 1;
//! 3. adopts the mean of the multiset after discarding the `t` lowest and
//!    `t` highest entries.
//!
//! Muting is what makes the protocol round-optimal: an inconsistency
//! (one honest party accepting a leader's value while another rejects it)
//! forces every honest grade for that leader into `{0, 1}`, so *all* honest
//! parties mute it, after which none of its values can ever reach grade
//! ≥ 1 again. Each Byzantine party can therefore disturb at most **one**
//! iteration, and an undisturbed iteration collapses the honest range to a
//! single point. The per-iteration contraction is `t_i / (n − 2t)` where
//! `t_i` is the number of parties burned in iteration `i` and
//! `Σ t_i ≤ t` — exactly the envelope behind Theorem 3 (see DESIGN.md §5
//! for the full argument and for how this reconstruction relates to the
//! original, which is not retrievable offline).
//!
//! # What's here
//!
//! * [`RealAaParty`] — the protocol, fixed-round or with sound early
//!   stopping ([`RealAaConfig::early_stopping`]);
//! * [`IteratedAaParty`] — the classic `O(log(D/ε))`-round
//!   trim-and-halve baseline of Dolev et al., for the comparisons in the
//!   paper's introduction;
//! * [`adversary`] — Byzantine strategies, including
//!   [`adversary::BudgetSplitEquivocator`], which realizes the worst-case
//!   convergence envelope against `RealAA`;
//! * [`R64`] — finite, totally ordered real values used on the wire;
//! * round-complexity formulas ([`iterations_for`], [`rounds_bound`],
//!   [`halving_iterations`]).
//!
//! # Example
//!
//! ```
//! use real_aa::{RealAaConfig, RealAaParty};
//! use sim_net::{run_simulation, Passive, SimConfig};
//!
//! let cfg = RealAaConfig::new(4, 1, 1.0, 8.0).unwrap();
//! let inputs = [0.0, 8.0, 3.0, 5.0];
//! let report = run_simulation(
//!     SimConfig { n: 4, t: 1, max_rounds: 200 },
//!     |id, _n| RealAaParty::new(id, cfg, inputs[id.index()]),
//!     Passive,
//! ).unwrap();
//! let outs = report.honest_outputs();
//! let spread = outs.iter().cloned().fold(f64::MIN, f64::max)
//!     - outs.iter().cloned().fold(f64::MAX, f64::min);
//! assert!(spread <= 1.0); // ε-agreement
//! assert!(outs.iter().all(|&v| (0.0..=8.0).contains(&v))); // validity
//! ```

#![warn(missing_docs)]
pub mod adversary;
mod batch;
mod bundle;
mod iterated;
mod multiset;
mod real_aa;
mod rounds;
mod value;

pub use batch::{RealAaBatchMsg, RealAaBatchParty};
pub use bundle::{BundleError, BundledAaMsg, BundledAaParty};
pub use iterated::{IteratedAaConfig, IteratedAaParty, PlainValueMsg};
pub use multiset::{trimmed, trimmed_mean, trimmed_midpoint};
pub use real_aa::{RealAaConfig, RealAaMsg, RealAaParty};
pub use rounds::{halving_iterations, iterations_for, rounds_bound};
pub use value::R64;
