//! Regression: the engine's parallel stepping path must be *bit-identical*
//! to the sequential reference — same outputs, same per-round metrics,
//! same adversary observations — because protocol rounds are pure
//! functions of their inboxes and outboxes are collected in party-id
//! order regardless of thread scheduling.
//!
//! The honest matrix covers the sizes the experiments use (below and
//! above `PARALLEL_THRESHOLD`); the rushing run pins down the adversary
//! path, whose tentative-outbox views must also be order-stable.

use real_aa::adversary::BudgetSplitEquivocator;
use real_aa::{RealAaConfig, RealAaParty};
use sim_net::{run_simulation_with, EngineConfig, PartyId, RunReport, SimConfig, StepMode};

fn run_mode(n: usize, mode: StepMode) -> RunReport<f64> {
    let t = (n - 1) / 3;
    let cfg = RealAaConfig::new(n, t, 1.0, 100.0).unwrap();
    let inputs: Vec<f64> = (0..n).map(|i| 100.0 * i as f64 / (n - 1) as f64).collect();
    run_simulation_with(
        EngineConfig {
            sim: SimConfig {
                n,
                t,
                max_rounds: cfg.rounds() + 5,
            },
            step_mode: mode,
        },
        |id, _| RealAaParty::new(id, cfg, inputs[id.index()]),
        sim_net::Passive,
    )
    .unwrap()
}

#[test]
fn parallel_equals_sequential_across_sizes() {
    for n in [4usize, 7, 16, 64] {
        let sequential = run_mode(n, StepMode::Sequential);
        for mode in [
            StepMode::Auto,
            StepMode::Parallel { threads: 0 },
            StepMode::Parallel { threads: 2 },
            StepMode::Parallel { threads: 5 },
        ] {
            let report = run_mode(n, mode);
            assert_eq!(report, sequential, "n = {n}, mode {mode:?} diverged");
        }
    }
}

#[test]
fn parallel_equals_sequential_under_rushing_adversary() {
    // The equivocator is *rushing*: it inspects every party's tentative
    // outbox for the round before rewriting its own traffic, so any
    // cross-mode difference in outbox collection order would surface as a
    // different attack and different honest outputs.
    let (n, t) = (7usize, 2usize);
    let cfg = RealAaConfig::new(n, t, 1.0, 100.0).unwrap();
    let inputs = [0.0, 0.0, 0.0, 100.0, 30.0, 60.0, 90.0];
    let run = |mode: StepMode| {
        run_simulation_with(
            EngineConfig {
                sim: SimConfig {
                    n,
                    t,
                    max_rounds: cfg.rounds() + 5,
                },
                step_mode: mode,
            },
            |id, _| RealAaParty::new(id, cfg, inputs[id.index()]),
            BudgetSplitEquivocator::new(n, vec![PartyId(0), PartyId(1)], vec![1, 1]),
        )
        .unwrap()
    };
    let sequential = run(StepMode::Sequential);
    for mode in [
        StepMode::Auto,
        StepMode::Parallel { threads: 0 },
        StepMode::Parallel { threads: 3 },
    ] {
        assert_eq!(
            run(mode),
            sequential,
            "mode {mode:?} diverged under adversary"
        );
    }
}
