//! The bundled-AA equivalence suite: every instance of a
//! [`BundledAaParty`] bundle must be observably identical to running
//! that instance alone as a [`RealAaBatchParty`] — same outputs, same
//! run length, same degradation verdicts, and the same protocol-level
//! trace events (grades and iteration summaries) — under honest,
//! crashing, equivocating, and scheduled-fault executions, in both the
//! sequential and the parallel stepping engine.
//!
//! This is the proof obligation that makes bundling safe to use for
//! throughput: amortizing k instances over one wire must not change any
//! single instance's semantics.

use std::sync::Arc;

use aa_trace::Json;
use gradecast::{GcBatchMsg, GcBundleMsg, GcSlots};
use real_aa::{BundledAaMsg, BundledAaParty, RealAaBatchMsg, RealAaBatchParty, RealAaConfig, R64};
use sim_net::{
    run_simulation_faulted_traced, Adversary, AdversaryCtx, CrashAdversary, CrashFault,
    EngineConfig, EventKind, FaultPlan, Partition, PartyId, Passive, SimConfig, StaticByzantine,
    StepMode, Trace,
};

const N: usize = 7;
const T: usize = 2;
const EPS: f64 = 0.5;
const DIAM: f64 = 10.0;

/// Both engine paths under test.
const MODES: [StepMode; 2] = [StepMode::Sequential, StepMode::Parallel { threads: 2 }];

fn cfg(early: bool) -> RealAaConfig {
    let c = RealAaConfig::new(N, T, EPS, DIAM).expect("valid config");
    if early {
        c.with_early_stopping()
    } else {
        c
    }
}

/// Deterministic per-(party, instance) inputs. Every third instance is
/// ε-tight from the start so, with early stopping, instances terminate
/// at different iterations — exercising the partial-presence outer
/// bitmaps (a finished instance's slot goes absent on the wire).
fn input(p: usize, j: usize) -> f64 {
    if j.is_multiple_of(3) {
        5.0 + (p as f64) * 0.01
    } else {
        ((p * 31 + j * 17 + 3) % 101) as f64 / 100.0 * DIAM
    }
}

fn engine(cfg: &RealAaConfig, mode: StepMode) -> EngineConfig {
    let mut e = EngineConfig::from(SimConfig {
        n: N,
        t: T,
        max_rounds: 10 + cfg.rounds(),
    });
    e.step_mode = mode;
    e
}

/// `(round, party, label, fields)` — a protocol event with enough
/// context to compare across runs.
type NormEvent = (u32, usize, String, Vec<(String, Json)>);

/// The bundled trace restricted to instance `inst`, with the `inst`
/// field stripped: what that instance "saw" of the run.
fn bundled_instance_events(trace: &Trace, inst: u64) -> Vec<NormEvent> {
    trace
        .events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::Proto { party, event } => {
                let this = event.field("inst").and_then(Json::as_u64)?;
                (this == inst).then(|| {
                    (
                        e.round,
                        *party,
                        event.label.clone(),
                        event
                            .fields
                            .iter()
                            .filter(|(k, _)| k != "inst")
                            .cloned()
                            .collect(),
                    )
                })
            }
            _ => None,
        })
        .collect()
}

fn solo_events(trace: &Trace) -> Vec<NormEvent> {
    trace
        .events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::Proto { party, event } => {
                Some((e.round, *party, event.label.clone(), event.fields.clone()))
            }
            _ => None,
        })
        .collect()
}

/// The differential harness: one bundled run of `k` instances vs `k`
/// independent batched runs under semantically identical adversaries
/// and the same fault plan, compared per instance on outputs, verdicts,
/// trace events, and (across the bundle) total run length.
fn assert_bundle_equivalent<AB, AS>(
    cfg: RealAaConfig,
    k: usize,
    mode: StepMode,
    plan: &FaultPlan,
    adv_bundle: AB,
    mut adv_solo: impl FnMut() -> AS,
) where
    AB: Adversary<BundledAaMsg>,
    AS: Adversary<RealAaBatchMsg>,
{
    let (bundled, btrace) = run_simulation_faulted_traced(
        engine(&cfg, mode),
        plan,
        |id, _| {
            BundledAaParty::new(id, cfg, (0..k).map(|j| input(id.index(), j)).collect())
                .expect("k >= 1")
        },
        adv_bundle,
    )
    .expect("bundled run");

    let mut slowest = 0;
    for j in 0..k {
        let (solo, strace) = run_simulation_faulted_traced(
            engine(&cfg, mode),
            plan,
            |id, _| RealAaBatchParty::new(id, cfg, input(id.index(), j)),
            adv_solo(),
        )
        .expect("solo run");

        for p in 0..cfg.n {
            assert_eq!(
                bundled.outputs[p].as_ref().map(|v| v[j]),
                solo.outputs[p],
                "instance {j}, party {p}: bundled output diverges from solo ({mode:?})"
            );
        }
        assert_eq!(
            bundled.corrupted, solo.corrupted,
            "instance {j}: corruption verdicts diverge ({mode:?})"
        );
        assert_eq!(
            bundled.crashed, solo.crashed,
            "instance {j}: crash verdicts diverge ({mode:?})"
        );
        assert_eq!(
            bundled_instance_events(&btrace, j as u64),
            solo_events(&strace),
            "instance {j}: protocol event streams diverge ({mode:?})"
        );
        slowest = slowest.max(solo.rounds_executed);
    }
    assert_eq!(
        bundled.rounds_executed, slowest,
        "bundled run length must equal the slowest instance's ({mode:?})"
    );
}

#[test]
fn honest_bundles_match_solo_runs() {
    for k in [1, 3, 17] {
        for mode in MODES {
            assert_bundle_equivalent(cfg(true), k, mode, &FaultPlan::none(), Passive, || Passive);
        }
    }
}

#[test]
fn crashing_bundles_match_solo_runs() {
    // Crashes land in rounds 2 and 3 — inside every instance's active
    // window (the earliest an instance can terminate is round 4), so the
    // bundled run and every solo run see the identical fault pattern
    // even though the runs have different lengths.
    let crashes = || CrashAdversary {
        crashes: vec![(PartyId(1), 2), (PartyId(4), 3)],
    };
    for k in [1, 3] {
        for mode in MODES {
            assert_bundle_equivalent(cfg(true), k, mode, &FaultPlan::none(), crashes(), crashes);
        }
    }
}

#[test]
fn equivocating_bundles_match_solo_runs() {
    // Leader 0 equivocates its round-1 lead — 0.0 to parties 1..=3,
    // DIAM to 4..=6 — expressed once on the bundled wire (the same lie
    // in every instance's slot) and once per solo wire.
    for k in [1, 3] {
        for mode in MODES {
            let adv_bundle = StaticByzantine {
                parties: vec![PartyId(0)],
                behave: move |ctx: &mut AdversaryCtx<'_, BundledAaMsg>| {
                    if ctx.round() == 1 {
                        for i in 1..N {
                            let v = if i <= 3 { 0.0 } else { DIAM };
                            let leads = GcSlots::from_options(vec![Some(R64::new(v)); k]);
                            ctx.send(
                                PartyId(0),
                                PartyId(i),
                                BundledAaMsg {
                                    iter: 0,
                                    body: GcBundleMsg::Leads(Arc::new(leads)),
                                },
                            );
                        }
                    }
                },
            };
            let adv_solo = || StaticByzantine {
                parties: vec![PartyId(0)],
                behave: |ctx: &mut AdversaryCtx<'_, RealAaBatchMsg>| {
                    if ctx.round() == 1 {
                        for i in 1..N {
                            let v = if i <= 3 { 0.0 } else { DIAM };
                            ctx.send(
                                PartyId(0),
                                PartyId(i),
                                RealAaBatchMsg {
                                    iter: 0,
                                    body: GcBatchMsg::Lead(R64::new(v)),
                                },
                            );
                        }
                    }
                },
            };
            assert_bundle_equivalent(
                cfg(false),
                k,
                mode,
                &FaultPlan::none(),
                adv_bundle,
                adv_solo,
            );
        }
    }
}

#[test]
fn faulted_schedules_match_solo_runs() {
    // A healing partition plus a crash/recovery window: scheduled faults
    // that the lockstep engine injects identically into both runs. Both
    // windows close by round 4 — before the earliest possible instance
    // termination — so every solo run experiences the full plan no
    // matter how short it is.
    let plan = FaultPlan {
        seed: 0,
        drop_permille: 0,
        dup_permille: 0,
        delay_spike_permille: 0,
        partitions: vec![Partition {
            side: vec![2],
            from_round: 2,
            heal_round: 4,
        }],
        crashes: vec![CrashFault {
            party: 1,
            crash_round: 2,
            recover_round: 4,
        }],
    };
    assert!(plan.lockstep_compatible() && plan.eventually_connected());
    for k in [1, 3] {
        for mode in MODES {
            assert_bundle_equivalent(cfg(true), k, mode, &plan, Passive, || Passive);
        }
    }
}
