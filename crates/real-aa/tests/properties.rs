//! Property tests: `RealAA` and the halving baseline keep Validity and
//! ε-Agreement under chaos, crash and budget-split adversaries, across
//! random (n, t), inputs, and seeds.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use real_aa::adversary::{equal_split_schedule, BudgetSplitEquivocator, RealAaChaos};
use real_aa::{IteratedAaConfig, IteratedAaParty, RealAaConfig, RealAaParty};
use sim_net::{run_simulation, CrashAdversary, PartyId, SimConfig};

fn spread(outs: &[f64]) -> f64 {
    let lo = outs.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = outs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    hi - lo
}

/// Derives a random scenario: (n, t, inputs, corrupted set).
fn scenario(seed: u64) -> (usize, usize, Vec<f64>, Vec<PartyId>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let t = rng.gen_range(1..=3usize);
    let n = 3 * t + 1 + rng.gen_range(0..3usize);
    let inputs: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..100.0)).collect();
    let mut ids: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        ids.swap(i, j);
    }
    let nbad = rng.gen_range(0..=t);
    let bad = ids[..nbad].iter().map(|&i| PartyId(i)).collect();
    (n, t, inputs, bad)
}

fn honest_range(inputs: &[f64], bad: &[PartyId]) -> (f64, f64) {
    let honest: Vec<f64> = inputs
        .iter()
        .enumerate()
        .filter(|(i, _)| !bad.iter().any(|b| b.index() == *i))
        .map(|(_, &v)| v)
        .collect();
    (
        honest.iter().cloned().fold(f64::INFINITY, f64::min),
        honest.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn realaa_safe_under_chaos(seed in any::<u64>()) {
        let (n, t, inputs, bad) = scenario(seed);
        let eps = 0.5;
        let cfg = RealAaConfig::new(n, t, eps, 100.0).unwrap();
        let adv = RealAaChaos::new(bad.clone(), seed, (-50.0, 150.0));
        let report = run_simulation(
            SimConfig { n, t, max_rounds: cfg.rounds() + 5 },
            |id, _| RealAaParty::new(id, cfg, inputs[id.index()]),
            adv,
        ).unwrap();
        let outs = report.honest_outputs();
        let (lo, hi) = honest_range(&inputs, &bad);
        prop_assert!(spread(&outs) <= eps, "spread {} > eps", spread(&outs));
        for &o in &outs {
            prop_assert!(o >= lo - 1e-9 && o <= hi + 1e-9, "validity: {o} not in [{lo},{hi}]");
        }
    }

    #[test]
    fn realaa_safe_under_budget_split(seed in any::<u64>(), spread_iters in 1usize..4) {
        let (n, t, inputs, bad) = scenario(seed);
        let eps = 0.25;
        let cfg = RealAaConfig::new(n, t, eps, 100.0).unwrap();
        if bad.is_empty() {
            return Ok(());
        }
        let schedule = equal_split_schedule(bad.len(), spread_iters);
        let adv = BudgetSplitEquivocator::new(n, bad.clone(), schedule);
        let report = run_simulation(
            SimConfig { n, t, max_rounds: cfg.rounds() + 5 },
            |id, _| RealAaParty::new(id, cfg, inputs[id.index()]),
            adv,
        ).unwrap();
        let outs = report.honest_outputs();
        let (lo, hi) = honest_range(&inputs, &bad);
        prop_assert!(spread(&outs) <= eps, "spread {} > eps", spread(&outs));
        for &o in &outs {
            prop_assert!(o >= lo - 1e-9 && o <= hi + 1e-9, "validity: {o} not in [{lo},{hi}]");
        }
    }

    #[test]
    fn realaa_safe_under_crashes(seed in any::<u64>()) {
        let (n, t, inputs, bad) = scenario(seed);
        let eps = 0.5;
        let cfg = RealAaConfig::new(n, t, eps, 100.0).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x51);
        let crashes = bad.iter().map(|&p| (p, rng.gen_range(1..=6u32))).collect();
        let report = run_simulation(
            SimConfig { n, t, max_rounds: cfg.rounds() + 5 },
            |id, _| RealAaParty::new(id, cfg, inputs[id.index()]),
            CrashAdversary { crashes },
        ).unwrap();
        let outs = report.honest_outputs();
        let (lo, hi) = honest_range(&inputs, &bad);
        prop_assert!(spread(&outs) <= eps);
        for &o in &outs {
            prop_assert!(o >= lo - 1e-9 && o <= hi + 1e-9);
        }
    }

    #[test]
    fn realaa_early_stopping_safe_and_never_slower(seed in any::<u64>()) {
        let (n, t, inputs, bad) = scenario(seed);
        let eps = 0.5;
        let cfg = RealAaConfig::new(n, t, eps, 100.0).unwrap().with_early_stopping();
        let adv = RealAaChaos::new(bad.clone(), seed, (0.0, 100.0));
        let report = run_simulation(
            SimConfig { n, t, max_rounds: cfg.rounds() + 5 },
            |id, _| RealAaParty::new(id, cfg, inputs[id.index()]),
            adv,
        ).unwrap();
        let outs = report.honest_outputs();
        let (lo, hi) = honest_range(&inputs, &bad);
        prop_assert!(spread(&outs) <= eps, "spread {} > eps", spread(&outs));
        for &o in &outs {
            prop_assert!(o >= lo - 1e-9 && o <= hi + 1e-9);
        }
        prop_assert!(report.rounds_executed <= cfg.rounds() + 5);
    }

    #[test]
    fn baseline_safe_under_crashes(seed in any::<u64>()) {
        let (n, t, inputs, bad) = scenario(seed);
        let eps = 0.5;
        let cfg = IteratedAaConfig::new(n, t, eps, 100.0).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x52);
        let crashes = bad.iter().map(|&p| (p, rng.gen_range(1..=4u32))).collect();
        let report = run_simulation(
            SimConfig { n, t, max_rounds: cfg.rounds() + 5 },
            |id, _| IteratedAaParty::new(id, cfg, inputs[id.index()]),
            CrashAdversary { crashes },
        ).unwrap();
        let outs = report.honest_outputs();
        let (lo, hi) = honest_range(&inputs, &bad);
        prop_assert!(spread(&outs) <= eps, "baseline spread {}", spread(&outs));
        for &o in &outs {
            prop_assert!(o >= lo - 1e-9 && o <= hi + 1e-9);
        }
    }
}

/// The convergence envelope: with the whole budget split evenly over the
/// first `R0` iterations and the protocol running `R >= R0` iterations
/// total, the final spread must be bounded by `D · Π tᵢ / (n − 2t)^{R0}`
/// (zero afterwards if any later iteration is clean — so we run exactly
/// R0 iterations via the override to observe the envelope).
#[test]
fn budget_split_tracks_the_theoretical_envelope() {
    let n = 10;
    let t = 3;
    let d = 1000.0;
    for r0 in 1..=3u32 {
        let schedule = equal_split_schedule(t, r0 as usize);
        let cfg = RealAaConfig::new(n, t, 1e-12, d)
            .unwrap()
            .with_fixed_iterations(r0);
        let byz: Vec<PartyId> = (0..t).map(PartyId).collect();
        let adv = BudgetSplitEquivocator::new(n, byz.clone(), schedule.clone());
        let inputs: Vec<f64> = (0..n).map(|i| d * i as f64 / (n - 1) as f64).collect();
        let report = run_simulation(
            SimConfig {
                n,
                t,
                max_rounds: cfg.rounds() + 5,
            },
            |id, _| RealAaParty::new(id, cfg, inputs[id.index()]),
            adv,
        )
        .unwrap();
        let outs = report.honest_outputs();
        let bound: f64 = schedule
            .iter()
            .map(|&ti| ti as f64 / (n - 2 * t) as f64)
            .product::<f64>()
            * d;
        assert!(
            spread(&outs) <= bound + 1e-9,
            "R0 = {r0}: measured {} exceeds envelope {bound}",
            spread(&outs)
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn realaa_safe_under_selective_omission(seed in any::<u64>()) {
        use sim_net::SelectiveOmission;
        let (n, t, inputs, bad) = scenario(seed);
        let eps = 0.5;
        let cfg = RealAaConfig::new(n, t, eps, 100.0).unwrap();
        let adv = SelectiveOmission::new(bad.clone(), 0.4, seed);
        let report = run_simulation(
            SimConfig { n, t, max_rounds: cfg.rounds() + 5 },
            |id, _| RealAaParty::new(id, cfg, inputs[id.index()]),
            adv,
        ).unwrap();
        let outs = report.honest_outputs();
        let (lo, hi) = honest_range(&inputs, &bad);
        prop_assert!(spread(&outs) <= eps, "spread {} > eps", spread(&outs));
        for &o in &outs {
            prop_assert!(o >= lo - 1e-9 && o <= hi + 1e-9);
        }
    }
}
