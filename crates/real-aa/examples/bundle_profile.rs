//! Phase-level timing of the bundled data plane, bypassing the engine:
//! `cargo run --release -p real-aa --example bundle_profile -- <k>`

use std::sync::Arc;
use std::time::Instant;

use gradecast::{BundleGradecast, GcBundleMsg, GcSlots};
use real_aa::R64;
use sim_net::PartyId;

fn main() {
    let k: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000);
    let (n, t, iters) = (4usize, 1usize, 5u32);
    let active = vec![true; k];
    let muted = vec![vec![false; n]; k];

    let mut gcs: Vec<BundleGradecast<R64>> = (0..n)
        .map(|i| BundleGradecast::new(PartyId(i), n, t, k).unwrap())
        .collect();

    let mut t_reset = 0.0;
    let mut t_lead = 0.0;
    let mut t_echo = 0.0;
    let mut t_vote = 0.0;
    let mut t_grade = 0.0;
    let total = Instant::now();
    for _ in 0..iters {
        let s = Instant::now();
        for gc in &mut gcs {
            gc.reset_with_muted(&muted);
        }
        t_reset += s.elapsed().as_secs_f64();

        let s = Instant::now();
        let leads: Vec<(PartyId, GcBundleMsg<R64>)> = (0..n)
            .map(|p| {
                let vals = (0..k)
                    .map(|j| Some(R64::new((p * 7 + j) as f64 % 97.0)))
                    .collect();
                (
                    PartyId(p),
                    GcBundleMsg::Leads(Arc::new(GcSlots::from_options(vals))),
                )
            })
            .collect();
        t_lead += s.elapsed().as_secs_f64();

        let s = Instant::now();
        let echoes: Vec<(PartyId, GcBundleMsg<R64>)> = gcs
            .iter_mut()
            .enumerate()
            .map(|(p, gc)| {
                (
                    PartyId(p),
                    gc.on_leads(leads.iter().map(|(q, m)| (*q, m)), &active),
                )
            })
            .collect();
        t_echo += s.elapsed().as_secs_f64();

        let s = Instant::now();
        let votes: Vec<(PartyId, GcBundleMsg<R64>)> = gcs
            .iter_mut()
            .enumerate()
            .map(|(p, gc)| {
                (
                    PartyId(p),
                    gc.on_echoes(echoes.iter().map(|(q, m)| (*q, m)), &active),
                )
            })
            .collect();
        t_vote += s.elapsed().as_secs_f64();

        let s = Instant::now();
        let mut graded = 0usize;
        for gc in &mut gcs {
            let out = gc.on_votes(votes.iter().map(|(q, m)| (*q, m)), &active);
            graded += out.iter().filter(|o| o.is_some()).count();
        }
        t_grade += s.elapsed().as_secs_f64();
        assert_eq!(graded, n * k);
    }
    let wall = total.elapsed().as_secs_f64();
    println!(
        "k={k} n={n} iters={iters} wall {wall:.3}s  ({:.2} us/instance)",
        wall / k as f64 * 1e6
    );
    println!("  reset {t_reset:.3}s  lead-build {t_lead:.3}s  on_leads {t_echo:.3}s  on_echoes {t_vote:.3}s  on_votes+grade {t_grade:.3}s");
}
