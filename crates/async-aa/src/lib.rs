//! Asynchronous Byzantine approximate agreement on trees — the
//! `O(log D(T))` state of the art (Nowak & Rybicki, DISC 2019) that the
//! reproduced paper improves on *in the synchronous model*.
//!
//! The paper's related-work discussion (Section 1.2) leans on this
//! protocol twice: it is the prior best for trees in *both* models, and
//! its iteration-based outline is what `RealAA`'s gradecast machinery
//! deviates from. Implementing it end to end closes the reproduction's
//! comparison loop: experiment E13 measures its asynchronous time and
//! message complexity next to the synchronous protocols.
//!
//! # Construction
//!
//! Each iteration of the safe-area protocol needs every pair of honest
//! parties to act on multisets that agree on at least `n − t` entries,
//! which asynchrony does not give for free. The classic two-piece recipe
//! (Abraham–Amit–Dolev) is used:
//!
//! * **Reliable broadcast** ([`RbcInstance`], Bracha's echo/ready
//!   protocol): Byzantine senders cannot make two honest parties accept
//!   different values, and if one honest party accepts, all eventually do.
//! * **The witness technique** ([`AsyncTreeAaParty`]): after accepting
//!   `n − t` values a party reports its accepted set; a peer becomes a
//!   *witness* once every pair in its report has been accepted locally.
//!   Having `n − t` witnesses guarantees any two honest parties share a
//!   witness, hence share `n − t` accepted entries — restoring the
//!   common-core property the safe-area update needs.
//!
//! Each iteration then moves to the midpoint of the safe area
//! ([`tree_aa::safe_area_midpoint`]), halving the honest diameter;
//! `⌈log₂ D(T)⌉ + 2` iterations give 1-agreement, and validity is
//! inherited from the safe-area intersection.

#![warn(missing_docs)]
mod async_tree;
mod rbc;

pub use async_tree::{AsyncAaMsg, AsyncTreeAaConfig, AsyncTreeAaParty};
pub use rbc::{RbcInstance, RbcMsg};
