//! Bracha reliable broadcast, as an embeddable per-instance state machine.

use std::collections::BTreeMap;

use sim_net::{PartyId, Payload};

/// A reliable-broadcast message for one instance (the instance — its
/// broadcaster and any tag — is identified by the embedding protocol).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RbcMsg<V> {
    /// The broadcaster's value.
    Init(V),
    /// "I saw the broadcaster send this value."
    Echo(V),
    /// "Enough echoes/readies — I am committing to this value."
    Ready(V),
}

impl<V: Clone + std::fmt::Debug> Payload for RbcMsg<V> {
    fn size_bytes(&self) -> usize {
        1 + std::mem::size_of::<V>()
    }
}

/// One Bracha instance at one party: feed it every message for the
/// instance; it returns messages to broadcast and, eventually, the
/// delivered value.
///
/// Guarantees for `n > 3t` (property-tested in this crate):
///
/// * **Consistency** — no two honest parties deliver different values;
/// * **Totality** — if one honest party delivers, every honest party
///   eventually delivers (given fair delivery);
/// * **Validity** — an honest broadcaster's value is delivered by all.
///
/// Thresholds: echo on the broadcaster's `Init`; ready on
/// `⌈(n + t + 1)/2⌉` matching echoes or `t + 1` matching readies; deliver
/// on `2t + 1` matching readies.
#[derive(Clone, Debug)]
pub struct RbcInstance<V> {
    n: usize,
    t: usize,
    broadcaster: PartyId,
    sent_echo: bool,
    sent_ready: bool,
    delivered: Option<V>,
    /// The first value the broadcaster sent *directly* to this party.
    init_value: Option<V>,
    echo_seen: Vec<bool>,
    echo_tally: BTreeMap<V, usize>,
    ready_seen: Vec<bool>,
    ready_tally: BTreeMap<V, usize>,
}

impl<V: Clone + Ord + std::fmt::Debug> RbcInstance<V> {
    /// Creates the instance for the given broadcaster.
    ///
    /// # Panics
    ///
    /// Panics unless `n > 3t` and the broadcaster id is in range.
    pub fn new(n: usize, t: usize, broadcaster: PartyId) -> Self {
        assert!(n > 3 * t, "Bracha RBC requires n > 3t (n = {n}, t = {t})");
        assert!(broadcaster.index() < n, "broadcaster out of range");
        RbcInstance {
            n,
            t,
            broadcaster,
            sent_echo: false,
            sent_ready: false,
            delivered: None,
            init_value: None,
            echo_seen: vec![false; n],
            echo_tally: BTreeMap::new(),
            ready_seen: vec![false; n],
            ready_tally: BTreeMap::new(),
        }
    }

    /// The delivered value, if any.
    pub fn delivered(&self) -> Option<&V> {
        self.delivered.as_ref()
    }

    /// Handles one message from `from`. Returns the messages this party
    /// must broadcast in response, plus the value if this call caused
    /// delivery.
    pub fn on_message(&mut self, from: PartyId, msg: &RbcMsg<V>) -> (Vec<RbcMsg<V>>, Option<V>) {
        let mut out = Vec::new();
        match msg {
            RbcMsg::Init(v) => {
                // Authenticated channels: only the broadcaster's Init
                // counts; echo at most once.
                if from == self.broadcaster && self.init_value.is_none() {
                    self.init_value = Some(v.clone());
                }
                if from == self.broadcaster && !self.sent_echo {
                    self.sent_echo = true;
                    out.push(RbcMsg::Echo(v.clone()));
                }
            }
            RbcMsg::Echo(v) => {
                if !self.echo_seen[from.index()] {
                    self.echo_seen[from.index()] = true;
                    let c = self.echo_tally.entry(v.clone()).or_insert(0);
                    *c += 1;
                    if *c >= self.echo_threshold() && !self.sent_ready {
                        self.sent_ready = true;
                        out.push(RbcMsg::Ready(v.clone()));
                    }
                }
            }
            RbcMsg::Ready(v) => {
                if !self.ready_seen[from.index()] {
                    self.ready_seen[from.index()] = true;
                    let e = self.ready_tally.entry(v.clone()).or_insert(0);
                    *e += 1;
                    let c = *e;
                    if c > self.t && !self.sent_ready {
                        self.sent_ready = true;
                        out.push(RbcMsg::Ready(v.clone()));
                    }
                    if c > 2 * self.t && self.delivered.is_none() {
                        self.delivered = Some(v.clone());
                        return (out, Some(v.clone()));
                    }
                }
            }
        }
        (out, None)
    }

    /// `⌈(n + t + 1)/2⌉` — two different values can never both reach it.
    fn echo_threshold(&self) -> usize {
        (self.n + self.t + 1).div_ceil(2)
    }

    /// Proof that the broadcaster equivocated, if this party holds one.
    ///
    /// A value with more than `t` echoes was echoed by at least one honest
    /// party, and honest parties only echo the broadcaster's direct
    /// `Init`. So the broadcaster provably equivocated if two distinct
    /// values each clear `t` echoes, or if the `Init` it sent *us*
    /// conflicts with a value that cleared `t` echoes elsewhere. Byzantine
    /// echoers alone can never fabricate either condition.
    pub fn equivocation_evidence(&self) -> Option<String> {
        let strong: Vec<&V> = self
            .echo_tally
            .iter()
            .filter(|&(_, &c)| c > self.t)
            .map(|(v, _)| v)
            .collect();
        if let [a, b, ..] = strong.as_slice() {
            return Some(format!(
                "values {a:?} and {b:?} each echoed by more than t parties"
            ));
        }
        if let (Some(mine), Some(other)) = (self.init_value.as_ref(), strong.first()) {
            if mine != *other {
                return Some(format!(
                    "direct init {mine:?} conflicts with {other:?} echoed by more than t parties"
                ));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive n honest instances by hand with immediate delivery.
    fn run_honest(n: usize, t: usize, value: u64) -> Vec<Option<u64>> {
        let b = PartyId(0);
        let mut machines: Vec<RbcInstance<u64>> =
            (0..n).map(|_| RbcInstance::new(n, t, b)).collect();
        // Queue of (from, msg) broadcasts.
        let mut queue: Vec<(PartyId, RbcMsg<u64>)> = vec![(b, RbcMsg::Init(value))];
        while let Some((from, msg)) = queue.pop() {
            for (i, m) in machines.iter_mut().enumerate() {
                let (outs, _) = m.on_message(from, &msg);
                for o in outs {
                    queue.push((PartyId(i), o));
                }
            }
        }
        machines.iter().map(|m| m.delivered().copied()).collect()
    }

    #[test]
    fn honest_broadcast_delivers_everywhere() {
        for (n, t) in [(4, 1), (7, 2), (10, 3)] {
            let delivered = run_honest(n, t, 42);
            assert!(delivered.iter().all(|d| *d == Some(42)), "n={n}");
        }
    }

    #[test]
    fn init_from_non_broadcaster_is_ignored() {
        let mut m = RbcInstance::<u64>::new(4, 1, PartyId(0));
        let (out, d) = m.on_message(PartyId(2), &RbcMsg::Init(7));
        assert!(out.is_empty());
        assert!(d.is_none());
    }

    #[test]
    fn echoes_are_counted_once_per_sender() {
        let mut m = RbcInstance::<u64>::new(4, 1, PartyId(0));
        // Echo threshold for n=4,t=1 is ceil(6/2) = 3.
        for _ in 0..5 {
            let (out, _) = m.on_message(PartyId(1), &RbcMsg::Echo(9));
            assert!(out.is_empty(), "duplicate echoes must not trigger ready");
        }
        let (out, _) = m.on_message(PartyId(2), &RbcMsg::Echo(9));
        assert!(out.is_empty());
        let (out, _) = m.on_message(PartyId(3), &RbcMsg::Echo(9));
        assert_eq!(out, vec![RbcMsg::Ready(9)]);
    }

    #[test]
    fn ready_amplification_and_delivery() {
        let mut m = RbcInstance::<u64>::new(4, 1, PartyId(0));
        // t+1 = 2 readies -> own ready; 2t+1 = 3 readies -> deliver.
        let (out, d) = m.on_message(PartyId(1), &RbcMsg::Ready(5));
        assert!(out.is_empty() && d.is_none());
        let (out, d) = m.on_message(PartyId(2), &RbcMsg::Ready(5));
        assert_eq!(out, vec![RbcMsg::Ready(5)]);
        assert!(d.is_none());
        let (out, d) = m.on_message(PartyId(3), &RbcMsg::Ready(5));
        assert!(out.is_empty());
        assert_eq!(d, Some(5));
        assert_eq!(m.delivered(), Some(&5));
    }

    #[test]
    fn equivocation_is_proven_by_two_strong_echo_sets() {
        // n = 7, t = 2: a value with 3 echoes has at least one honest
        // echoer behind it.
        let mut m = RbcInstance::<u64>::new(7, 2, PartyId(0));
        for i in 1..=3 {
            m.on_message(PartyId(i), &RbcMsg::Echo(1));
        }
        assert!(m.equivocation_evidence().is_none());
        for i in 4..=6 {
            m.on_message(PartyId(i), &RbcMsg::Echo(2));
        }
        let ev = m.equivocation_evidence().expect("two strong values");
        assert!(ev.contains("more than t"), "{ev}");
    }

    #[test]
    fn equivocation_is_proven_by_conflicting_direct_init() {
        let mut m = RbcInstance::<u64>::new(4, 1, PartyId(0));
        m.on_message(PartyId(0), &RbcMsg::Init(7));
        assert!(m.equivocation_evidence().is_none());
        // A different value clears t = 1 echoes (one of them honest).
        m.on_message(PartyId(1), &RbcMsg::Echo(9));
        m.on_message(PartyId(2), &RbcMsg::Echo(9));
        let ev = m.equivocation_evidence().expect("init conflicts");
        assert!(ev.contains("conflicts"), "{ev}");
    }

    #[test]
    fn byzantine_echoes_alone_prove_nothing() {
        // t = 2 Byzantine echoers push a fake value to exactly t echoes:
        // below the provability bar, and the honest value is untouched.
        let mut m = RbcInstance::<u64>::new(7, 2, PartyId(0));
        m.on_message(PartyId(0), &RbcMsg::Init(1));
        m.on_message(PartyId(5), &RbcMsg::Echo(9));
        m.on_message(PartyId(6), &RbcMsg::Echo(9));
        assert!(m.equivocation_evidence().is_none());
    }

    #[test]
    fn conflicting_echoes_cannot_both_reach_ready() {
        // n = 7, t = 2: echo threshold = 5; 7 echoers can't give two
        // values 5 echoes each.
        let mut m = RbcInstance::<u64>::new(7, 2, PartyId(0));
        for i in 1..=4 {
            m.on_message(PartyId(i), &RbcMsg::Echo(1));
        }
        for i in 5..7 {
            m.on_message(PartyId(i), &RbcMsg::Echo(2));
        }
        let (out, _) = m.on_message(PartyId(0), &RbcMsg::Echo(1));
        // Value 1 reaches 5 echoes -> ready for 1; value 2 can never.
        assert_eq!(out, vec![RbcMsg::Ready(1)]);
    }
}
