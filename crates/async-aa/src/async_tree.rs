//! The asynchronous safe-area AA protocol on trees (Nowak–Rybicki style),
//! built from reliable broadcast plus the witness technique.

use std::collections::BTreeMap;
use std::sync::Arc;

use async_net::{AsyncCtx, AsyncProtocol, ProtoEvent};
use sim_net::{Degradation, Envelope, Evidence, EvidenceCertificate, Outcome, PartyId, Payload};
use tree_aa::safe_area_midpoint;
use tree_model::{Tree, VertexId};

use crate::rbc::{RbcInstance, RbcMsg};

/// Timer token of the recurring silence-deadline check.
const SILENCE_TOKEN: u64 = 1;

/// Public parameters of an asynchronous tree-AA execution.
#[derive(Clone, Debug)]
pub struct AsyncTreeAaConfig {
    /// Number of parties.
    pub n: usize,
    /// Corruption bound; requires `t < n/3`.
    pub t: usize,
    /// Fixed iteration count.
    pub iterations: u32,
    /// Degradation deadline, in normalized async-time units: if no output
    /// has been produced and more than `t` parties are implicated —
    /// silent for a full deadline window, or provably equivocating — the
    /// party returns [`Outcome::Degraded`] instead of waiting forever.
    pub silence_deadline: f64,
}

impl AsyncTreeAaConfig {
    /// Derives the configuration from the public tree:
    /// `⌈log₂ D(T)⌉ + 2` iterations (the honest diameter at least halves
    /// per iteration).
    ///
    /// # Errors
    ///
    /// Returns a description of the violated precondition if `n ≤ 3t`.
    pub fn new(n: usize, t: usize, tree: &Tree) -> Result<Self, String> {
        if n <= 3 * t {
            return Err(format!(
                "async tree AA requires n > 3t, got n = {n}, t = {t}"
            ));
        }
        let d = tree.diameter();
        let iterations = if d <= 1 {
            0
        } else {
            (d as f64).log2().ceil() as u32 + 2
        };
        Ok(AsyncTreeAaConfig {
            n,
            t,
            iterations,
            silence_deadline: 8.0,
        })
    }
}

/// A wire message: per-iteration RBC traffic or a witness report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AsyncAaMsg {
    /// Reliable-broadcast traffic for `(iter, broadcaster)`.
    Rbc {
        /// Iteration index (0-based).
        iter: u32,
        /// Whose value is being broadcast.
        broadcaster: PartyId,
        /// The Bracha message.
        inner: RbcMsg<u32>,
    },
    /// The sender's accepted set after reaching `n − t` acceptances:
    /// `(party, vertex)` pairs.
    Report {
        /// Iteration index (0-based).
        iter: u32,
        /// Accepted `(party index, vertex index)` pairs.
        entries: Vec<(u32, u32)>,
    },
}

impl Payload for AsyncAaMsg {
    fn size_bytes(&self) -> usize {
        match self {
            AsyncAaMsg::Rbc { inner, .. } => 9 + inner.size_bytes(),
            AsyncAaMsg::Report { entries, .. } => 5 + 8 * entries.len(),
        }
    }
}

/// Per-iteration bookkeeping.
#[derive(Clone, Debug)]
struct IterState {
    rbc: Vec<RbcInstance<u32>>,
    /// Accepted vertex per broadcaster.
    accepted: Vec<Option<u32>>,
    accepted_count: usize,
    /// Reports by sender (validated entries only).
    reports: Vec<Option<Vec<(u32, u32)>>>,
    report_sent: bool,
}

impl IterState {
    fn new(n: usize, t: usize) -> Self {
        IterState {
            rbc: (0..n).map(|b| RbcInstance::new(n, t, PartyId(b))).collect(),
            accepted: vec![None; n],
            accepted_count: 0,
            reports: vec![None; n],
            report_sent: false,
        }
    }

    /// Whether `q`'s report is fully covered by our acceptances.
    fn is_witness(&self, q: usize) -> bool {
        match &self.reports[q] {
            None => false,
            Some(entries) => entries
                .iter()
                .all(|&(p, v)| self.accepted[p as usize] == Some(v)),
        }
    }

    fn witness_count(&self, n: usize) -> usize {
        (0..n).filter(|&q| self.is_witness(q)).count()
    }
}

/// One party of the asynchronous safe-area protocol.
///
/// Lifecycle per iteration: reliably broadcast the current vertex; accept
/// peers' RBC deliveries (validated against the tree); after `n − t`
/// acceptances broadcast a report; after `n − t` witnesses move to the
/// safe-area midpoint of everything accepted so far and start the next
/// iteration. Parties at different iterations coexist: all per-iteration
/// state is kept and messages for any iteration are processed on arrival.
///
/// The party keeps cooperating (echoing, reporting) after producing its
/// output — honest peers may still be catching up, which is the
/// asynchronous reality the paper's synchronous `Wait until round …`
/// step sidesteps.
///
/// # Graceful degradation
///
/// A recurring silence-deadline timer watches for over-threshold fault
/// conditions the protocol cannot make progress under. When the set of
/// *implicated* parties — those silent for a full deadline window plus
/// those with a provable equivocation certificate from the RBC layer —
/// exceeds `t`, the party stops waiting and returns
/// [`Outcome::Degraded`]: its current vertex (always inside the hull of
/// the values it accepted, hence of the honest inputs whenever `t < n/3`
/// actually held) together with an [`EvidenceCertificate`] naming every
/// implicated party. It never silently emits a wrong value.
#[derive(Clone, Debug)]
pub struct AsyncTreeAaParty {
    cfg: AsyncTreeAaConfig,
    tree: Arc<Tree>,
    vertex: VertexId,
    current_iter: u32,
    iters: BTreeMap<u32, IterState>,
    /// Last time each party was heard from (any message).
    last_heard: Vec<f64>,
    output: Option<Outcome<VertexId>>,
}

impl AsyncTreeAaParty {
    /// Creates the party with its input vertex.
    ///
    /// # Panics
    ///
    /// Panics if `input` is out of range for `tree`.
    pub fn new(cfg: AsyncTreeAaConfig, tree: Arc<Tree>, input: VertexId) -> Self {
        assert!(
            input.index() < tree.vertex_count(),
            "input vertex out of range"
        );
        let n = cfg.n;
        AsyncTreeAaParty {
            cfg,
            tree,
            vertex: input,
            current_iter: 0,
            iters: BTreeMap::new(),
            last_heard: vec![0.0; n],
            output: None,
        }
    }

    /// Everything currently implicating a party: silence past the
    /// deadline window and provable RBC equivocation.
    fn gather_evidence(&self, now: f64, me: PartyId) -> Vec<Evidence> {
        let mut evidence = Vec::new();
        for (party, &heard) in self.last_heard.iter().enumerate() {
            if party != me.index() && heard + self.cfg.silence_deadline <= now {
                evidence.push(Evidence::Silence {
                    party,
                    round: heard.floor() as u32 + 1,
                });
            }
        }
        for (&iter, st) in &self.iters {
            for (b, rbc) in st.rbc.iter().enumerate() {
                if let Some(context) = rbc.equivocation_evidence() {
                    evidence.push(Evidence::Equivocation {
                        party: b,
                        context: format!("iter {iter}: {context}"),
                    });
                }
            }
        }
        evidence
    }

    fn state(&mut self, iter: u32) -> &mut IterState {
        let (n, t) = (self.cfg.n, self.cfg.t);
        self.iters
            .entry(iter)
            .or_insert_with(|| IterState::new(n, t))
    }

    fn vertex_from_index(&self, idx: u32) -> Option<VertexId> {
        let idx = idx as usize;
        (idx < self.tree.vertex_count())
            .then(|| self.tree.vertices().nth(idx).expect("validated index"))
    }

    fn start_iteration(&mut self, ctx: &mut AsyncCtx<AsyncAaMsg>) {
        let iter = self.current_iter;
        ctx.broadcast(AsyncAaMsg::Rbc {
            iter,
            broadcaster: ctx.me(),
            inner: RbcMsg::Init(self.vertex.index() as u32),
        });
    }

    /// Drives the current iteration's progress rules to a fixed point.
    fn progress(&mut self, ctx: &mut AsyncCtx<AsyncAaMsg>) {
        loop {
            if self.output.is_some() {
                return;
            }
            let iter = self.current_iter;
            let (n, t) = (self.cfg.n, self.cfg.t);
            let st = self.state(iter);

            if !st.report_sent && st.accepted_count >= n - t {
                st.report_sent = true;
                let entries: Vec<(u32, u32)> = st
                    .accepted
                    .iter()
                    .enumerate()
                    .filter_map(|(p, v)| v.map(|v| (p as u32, v)))
                    .collect();
                ctx.broadcast(AsyncAaMsg::Report { iter, entries });
                continue; // self-delivery is asynchronous; keep checking
            }
            if st.report_sent && st.witness_count(n) >= n - t {
                // Advance: safe-area midpoint of everything accepted.
                let accepted: Vec<u32> = st.accepted.iter().filter_map(|v| *v).collect();
                let accepted_count = accepted.len();
                let received: Vec<VertexId> = accepted
                    .into_iter()
                    .filter_map(|v| self.vertex_from_index(v))
                    .collect();
                if let Some(mid) = safe_area_midpoint(&self.tree, &received, n, t) {
                    self.vertex = mid;
                }
                self.current_iter += 1;
                let vertex = self.vertex.index() as u64;
                ctx.emit_with(|| {
                    ProtoEvent::new("treeaa.iter")
                        .u64("iter", u64::from(iter))
                        .u64("vertex", vertex)
                        .u64("accepted", accepted_count as u64)
                });
                if self.current_iter >= self.cfg.iterations {
                    self.output = Some(Outcome::Value(self.vertex));
                    ctx.emit_with(|| {
                        ProtoEvent::new("treeaa.out")
                            .u64("vertex", vertex)
                            .bool("degraded", false)
                    });
                    return;
                }
                self.start_iteration(ctx);
                continue; // buffered messages may already complete it
            }
            return;
        }
    }
}

impl AsyncProtocol for AsyncTreeAaParty {
    type Msg = AsyncAaMsg;
    type Output = Outcome<VertexId>;

    fn on_start(&mut self, ctx: &mut AsyncCtx<AsyncAaMsg>) {
        if self.cfg.iterations == 0 {
            self.output = Some(Outcome::Value(self.vertex));
            let vertex = self.vertex.index() as u64;
            ctx.emit_with(|| {
                ProtoEvent::new("treeaa.out")
                    .u64("vertex", vertex)
                    .bool("degraded", false)
            });
            return;
        }
        self.start_iteration(ctx);
        ctx.set_timer(self.cfg.silence_deadline, SILENCE_TOKEN);
    }

    fn on_message(&mut self, env: Envelope<AsyncAaMsg>, ctx: &mut AsyncCtx<AsyncAaMsg>) {
        let from = env.from.index();
        if from < self.last_heard.len() {
            self.last_heard[from] = self.last_heard[from].max(ctx.now());
        }
        match env.payload {
            AsyncAaMsg::Rbc {
                iter,
                broadcaster,
                inner,
            } => {
                if broadcaster.index() >= self.cfg.n || iter >= self.cfg.iterations {
                    return;
                }
                // Validate Init values against the tree so every honest
                // party rejects out-of-range vertices identically.
                if let RbcMsg::Init(v) = &inner {
                    if self.vertex_from_index(*v).is_none() {
                        return;
                    }
                }
                let nv = self.tree.vertex_count() as u32;
                let st = self.state(iter);
                let (outs, delivered) = st.rbc[broadcaster.index()].on_message(env.from, &inner);
                for o in outs {
                    ctx.broadcast(AsyncAaMsg::Rbc {
                        iter,
                        broadcaster,
                        inner: o,
                    });
                }
                if let Some(v) = delivered {
                    // Deliveries with invalid vertices are impossible: no
                    // honest party echoes them, so they can't gather
                    // 2t + 1 readies; guard anyway.
                    if v < nv && st.accepted[broadcaster.index()].is_none() {
                        st.accepted[broadcaster.index()] = Some(v);
                        st.accepted_count += 1;
                    }
                }
            }
            AsyncAaMsg::Report { iter, entries } => {
                if iter >= self.cfg.iterations {
                    return;
                }
                let n = self.cfg.n;
                let nv = self.tree.vertex_count();
                let valid = entries.len() <= n
                    && entries
                        .iter()
                        .all(|&(p, v)| (p as usize) < n && (v as usize) < nv);
                if valid {
                    let st = self.state(iter);
                    if st.reports[env.from.index()].is_none() {
                        st.reports[env.from.index()] = Some(entries);
                    }
                }
            }
        }
        self.progress(ctx);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut AsyncCtx<AsyncAaMsg>) {
        if token != SILENCE_TOKEN || self.output.is_some() {
            return;
        }
        let evidence = self.gather_evidence(ctx.now(), ctx.me());
        let certificate = EvidenceCertificate::new(evidence, self.cfg.t);
        if certificate.exceeds_budget() {
            // Over-threshold: waiting can last forever. Degrade to the
            // current vertex with the proof of why.
            self.output = Some(Outcome::Degraded(Degradation {
                fallback: self.vertex,
                certificate,
            }));
            let vertex = self.vertex.index() as u64;
            ctx.emit_with(|| {
                ProtoEvent::new("treeaa.out")
                    .u64("vertex", vertex)
                    .bool("degraded", true)
            });
        } else {
            // Slow, not provably broken: keep watching.
            ctx.set_timer(self.cfg.silence_deadline, SILENCE_TOKEN);
        }
    }

    fn output(&self) -> Option<Outcome<VertexId>> {
        self.output.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use async_net::{run_async, AsyncConfig, DelayModel, SilentAsync};
    use tree_aa::check_tree_aa;
    use tree_model::generate;

    fn run(
        tree: &Arc<Tree>,
        n: usize,
        t: usize,
        inputs: &[VertexId],
        delay: DelayModel,
        seed: u64,
        silent: Vec<PartyId>,
    ) -> async_net::AsyncReport<Outcome<VertexId>> {
        let cfg = AsyncTreeAaConfig::new(n, t, tree).unwrap();
        let acfg = AsyncConfig {
            n,
            t,
            seed,
            delay,
            max_events: 3_000_000,
        };
        run_async(
            acfg,
            |id, _| AsyncTreeAaParty::new(cfg.clone(), Arc::clone(tree), inputs[id.index()]),
            SilentAsync { parties: silent },
        )
        .unwrap()
    }

    /// Unwraps honest outcomes, asserting none degraded.
    fn values(report: &async_net::AsyncReport<Outcome<VertexId>>) -> Vec<VertexId> {
        report
            .honest_outputs()
            .into_iter()
            .map(|o| {
                assert!(!o.is_degraded(), "unexpected degradation: {o:?}");
                o.into_value()
            })
            .collect()
    }

    #[test]
    fn converges_honestly_across_families_and_delays() {
        for tree in [
            generate::path(17),
            generate::star(9),
            generate::caterpillar(6, 2),
        ] {
            let tree = Arc::new(tree);
            let m = tree.vertex_count();
            let n = 4;
            let inputs: Vec<VertexId> = (0..n)
                .map(|i| tree.vertices().nth((i * 7) % m).unwrap())
                .collect();
            for (delay, seed) in [
                (DelayModel::Uniform { min: 0.05 }, 1u64),
                (DelayModel::Lockstep, 2),
                (
                    DelayModel::SlowParties {
                        slow: vec![PartyId(0)],
                        min: 0.1,
                    },
                    3,
                ),
            ] {
                let report = run(&tree, n, 1, &inputs, delay, seed, vec![]);
                check_tree_aa(&tree, &inputs, &values(&report)).unwrap();
            }
        }
    }

    #[test]
    fn tolerates_silent_byzantine() {
        let tree = Arc::new(generate::path(33));
        let n = 7;
        let t = 2;
        let m = tree.vertex_count();
        let inputs: Vec<VertexId> = (0..n)
            .map(|i| tree.vertices().nth((i * 5) % m).unwrap())
            .collect();
        let report = run(
            &tree,
            n,
            t,
            &inputs,
            DelayModel::Uniform { min: 0.1 },
            42,
            vec![PartyId(1), PartyId(5)],
        );
        let honest_inputs: Vec<VertexId> = (0..n)
            .filter(|&i| i != 1 && i != 5)
            .map(|i| inputs[i])
            .collect();
        check_tree_aa(&tree, &honest_inputs, &values(&report)).unwrap();
    }

    #[test]
    fn time_scales_with_log_diameter() {
        // Async time per iteration is a small constant (RBC depth +
        // report); total iterations are log2(D) + 2.
        let n = 4;
        let short = Arc::new(generate::path(5));
        let long = Arc::new(generate::path(257));
        let mk = |tree: &Arc<Tree>| {
            let m = tree.vertex_count();
            (0..n)
                .map(|i| tree.vertices().nth((i * (m - 1)) / (n - 1)).unwrap())
                .collect::<Vec<_>>()
        };
        let r_short = run(&short, n, 1, &mk(&short), DelayModel::Lockstep, 7, vec![]);
        let r_long = run(&long, n, 1, &mk(&long), DelayModel::Lockstep, 7, vec![]);
        assert!(r_long.completion_time > r_short.completion_time);
        // Iterations: 4 vs 10 => time ratio should be well under 4x.
        assert!(r_long.completion_time < 4.0 * r_short.completion_time);
    }

    #[test]
    fn trivial_diameter_is_immediate() {
        let tree = Arc::new(generate::path(2));
        let inputs = vec![tree.root(); 4];
        let report = run(&tree, 4, 1, &inputs, DelayModel::Lockstep, 1, vec![]);
        assert_eq!(report.completion_time, 0.0);
        assert!(values(&report).iter().all(|&v| v == tree.root()));
    }

    #[test]
    fn over_threshold_crashes_degrade_with_a_certificate() {
        use sim_net::{CrashFault, FaultPlan};

        // t = 1 but two parties crash forever: the survivors cannot make
        // progress and must degrade, naming both silent parties, with
        // fallbacks still inside the honest input hull.
        let tree = Arc::new(generate::path(9));
        let n = 4;
        let inputs: Vec<VertexId> = (0..n)
            .map(|i| tree.vertices().nth(i * 2).unwrap())
            .collect();
        let cfg = AsyncTreeAaConfig::new(n, 1, &tree).unwrap();
        let plan = FaultPlan {
            crashes: vec![
                CrashFault {
                    party: 2,
                    crash_round: 2,
                    recover_round: u32::MAX,
                },
                CrashFault {
                    party: 3,
                    crash_round: 2,
                    recover_round: u32::MAX,
                },
            ],
            ..FaultPlan::none()
        };
        let acfg = AsyncConfig {
            n,
            t: 1,
            seed: 5,
            delay: DelayModel::Uniform { min: 0.2 },
            max_events: 3_000_000,
        };
        let report = async_net::run_async_faulted(
            acfg,
            &plan,
            |id, _| AsyncTreeAaParty::new(cfg.clone(), Arc::clone(&tree), inputs[id.index()]),
            async_net::PassiveAsync,
        )
        .unwrap();
        assert_eq!(report.crashed, vec![false, false, true, true]);
        for (i, outcome) in report.honest_outputs().into_iter().enumerate() {
            assert!(outcome.is_degraded(), "party {i} should have degraded");
            let cert = outcome.certificate().unwrap().clone();
            assert!(cert.exceeds_budget());
            let parties: Vec<usize> = cert.evidence.iter().map(Evidence::party).collect();
            assert!(parties.contains(&2) && parties.contains(&3), "{cert}");
            // The fallback never leaves the input hull (here: the path
            // spanned by the inputs).
            let v = *outcome.value();
            assert!(inputs.contains(&v) || tree.vertices().any(|u| u == v));
        }
    }

    #[test]
    fn equivocation_evidence_reaches_the_certificate() {
        use async_net::AsyncAdversary;
        use sim_net::{CrashFault, FaultPlan};

        // Corrupted party 3 equivocates in iteration 0 (conflicting
        // Inits, echo weight behind the second value) while party 2
        // crashes forever: 2 implicated parties > t = 1, and the
        // certificate carries the equivocation proof.
        struct Equivocator;
        impl AsyncAdversary<AsyncAaMsg> for Equivocator {
            fn corrupted(&self) -> Vec<PartyId> {
                vec![PartyId(3)]
            }
            fn on_start(&mut self, sends: &mut Vec<(PartyId, PartyId, AsyncAaMsg)>) {
                let me = PartyId(3);
                let rbc = |inner| AsyncAaMsg::Rbc {
                    iter: 0,
                    broadcaster: me,
                    inner,
                };
                // Init 0 to party 0, Init 1 to the rest, plus our own
                // echo weight behind value 1.
                sends.push((me, PartyId(0), rbc(RbcMsg::Init(0))));
                for i in 1..3 {
                    sends.push((me, PartyId(i), rbc(RbcMsg::Init(1))));
                }
                for i in 0..3 {
                    sends.push((me, PartyId(i), rbc(RbcMsg::Echo(1))));
                }
            }
            fn on_deliver(
                &mut self,
                _env: &Envelope<AsyncAaMsg>,
                _sends: &mut Vec<(PartyId, PartyId, AsyncAaMsg)>,
            ) {
            }
        }

        let tree = Arc::new(generate::path(9));
        let n = 4;
        let inputs: Vec<VertexId> = (0..n)
            .map(|i| tree.vertices().nth(i * 2).unwrap())
            .collect();
        let cfg = AsyncTreeAaConfig::new(n, 1, &tree).unwrap();
        let plan = FaultPlan {
            crashes: vec![CrashFault {
                party: 2,
                crash_round: 2,
                recover_round: u32::MAX,
            }],
            ..FaultPlan::none()
        };
        let acfg = AsyncConfig {
            n,
            t: 1,
            seed: 6,
            delay: DelayModel::Uniform { min: 0.2 },
            max_events: 3_000_000,
        };
        let report = async_net::run_async_faulted(
            acfg,
            &plan,
            |id, _| AsyncTreeAaParty::new(cfg.clone(), Arc::clone(&tree), inputs[id.index()]),
            Equivocator,
        )
        .unwrap();
        // Party 0 holds the direct-init conflict; its certificate must
        // contain equivocation evidence against party 3.
        let outcome = report.outputs[0].as_ref().unwrap();
        assert!(outcome.is_degraded());
        let cert = outcome.certificate().unwrap();
        assert!(
            cert.evidence
                .iter()
                .any(|e| matches!(e, Evidence::Equivocation { party: 3, .. })),
            "{cert}"
        );
    }
}
