//! Property tests: the asynchronous safe-area protocol keeps Validity and
//! 1-Agreement across random trees, inputs, delay schedules and silent
//! Byzantine sets; reliable broadcast keeps consistency under value
//! injection.

use std::sync::Arc;

use async_aa::{AsyncAaMsg, AsyncTreeAaConfig, AsyncTreeAaParty, RbcMsg};
use async_net::{run_async, AsyncAdversary, AsyncConfig, DelayModel, SilentAsync};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sim_net::{Envelope, Outcome, PartyId};
use tree_aa::check_tree_aa;
use tree_model::{generate, Tree, VertexId};

/// Unwraps honest outcomes; fault-free async runs must never degrade.
fn plain_values(outcomes: Vec<Outcome<VertexId>>) -> Result<Vec<VertexId>, TestCaseError> {
    outcomes
        .into_iter()
        .map(|o| {
            if o.is_degraded() {
                Err(TestCaseError::fail(format!(
                    "unexpected degradation: {o:?}"
                )))
            } else {
                Ok(o.into_value())
            }
        })
        .collect()
}

fn scenario(
    seed: u64,
) -> (
    Arc<Tree>,
    usize,
    usize,
    Vec<VertexId>,
    Vec<PartyId>,
    DelayModel,
) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let t = rng.gen_range(1..=2usize);
    let n = 3 * t + 1;
    let size = rng.gen_range(2..25usize);
    let tree = Arc::new(generate::relabel_shuffled(
        &generate::random_prufer(size, &mut rng),
        &mut rng,
    ));
    let inputs: Vec<VertexId> = (0..n)
        .map(|_| tree.vertices().nth(rng.gen_range(0..size)).unwrap())
        .collect();
    let nbad = rng.gen_range(0..=t);
    let byz: Vec<PartyId> = (0..nbad).map(|i| PartyId((i * 2 + 1) % n)).collect();
    let delay = match rng.gen_range(0..3) {
        0 => DelayModel::Uniform { min: 0.05 },
        1 => DelayModel::Lockstep,
        _ => DelayModel::SlowParties {
            slow: vec![PartyId(0)],
            min: 0.1,
        },
    };
    (tree, n, t, inputs, byz, delay)
}

/// A spamming asynchronous adversary: on every delivery to a corrupted
/// party it re-broadcasts mangled RBC traffic (random vertices, random
/// iterations) from all corrupted identities.
struct AsyncSpammer {
    byz: Vec<PartyId>,
    rng: ChaCha8Rng,
    n: usize,
    vertex_count: usize,
    budget: usize,
}

impl AsyncAdversary<AsyncAaMsg> for AsyncSpammer {
    fn corrupted(&self) -> Vec<PartyId> {
        self.byz.clone()
    }
    fn on_start(&mut self, sends: &mut Vec<(PartyId, PartyId, AsyncAaMsg)>) {
        for &b in &self.byz {
            for to in 0..self.n {
                sends.push((
                    b,
                    PartyId(to),
                    AsyncAaMsg::Rbc {
                        iter: 0,
                        broadcaster: b,
                        inner: RbcMsg::Init(self.rng.gen_range(0..self.vertex_count as u32 + 2)),
                    },
                ));
            }
        }
    }
    fn on_deliver(
        &mut self,
        env: &Envelope<AsyncAaMsg>,
        sends: &mut Vec<(PartyId, PartyId, AsyncAaMsg)>,
    ) {
        if self.budget == 0 {
            return;
        }
        self.budget -= 1;
        let b = env.to;
        let to = PartyId(self.rng.gen_range(0..self.n));
        let iter = self.rng.gen_range(0..6);
        let broadcaster = PartyId(self.rng.gen_range(0..self.n));
        let v = self.rng.gen_range(0..self.vertex_count as u32 + 2);
        let inner = match self.rng.gen_range(0..3) {
            0 => RbcMsg::Init(v),
            1 => RbcMsg::Echo(v),
            _ => RbcMsg::Ready(v),
        };
        sends.push((
            b,
            to,
            AsyncAaMsg::Rbc {
                iter,
                broadcaster,
                inner,
            },
        ));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn async_tree_aa_safe_under_silence_and_delays(seed in any::<u64>()) {
        let (tree, n, t, inputs, byz, delay) = scenario(seed);
        let cfg = AsyncTreeAaConfig::new(n, t, &tree).unwrap();
        let report = run_async(
            AsyncConfig { n, t, seed, delay, max_events: 5_000_000 },
            |id, _| AsyncTreeAaParty::new(cfg.clone(), Arc::clone(&tree), inputs[id.index()]),
            SilentAsync { parties: byz.clone() },
        ).unwrap();
        let honest_inputs: Vec<VertexId> = (0..n)
            .filter(|i| !byz.iter().any(|b| b.index() == *i))
            .map(|i| inputs[i])
            .collect();
        check_tree_aa(&tree, &honest_inputs, &plain_values(report.honest_outputs())?)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
    }

    #[test]
    fn async_tree_aa_safe_under_spam(seed in any::<u64>()) {
        let (tree, n, t, inputs, byz, delay) = scenario(seed);
        let cfg = AsyncTreeAaConfig::new(n, t, &tree).unwrap();
        let adv = AsyncSpammer {
            byz: byz.clone(),
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0xF00D),
            n,
            vertex_count: tree.vertex_count(),
            budget: 5_000,
        };
        let report = run_async(
            AsyncConfig { n, t, seed, delay, max_events: 5_000_000 },
            |id, _| AsyncTreeAaParty::new(cfg.clone(), Arc::clone(&tree), inputs[id.index()]),
            adv,
        ).unwrap();
        let honest_inputs: Vec<VertexId> = (0..n)
            .filter(|i| !byz.iter().any(|b| b.index() == *i))
            .map(|i| inputs[i])
            .collect();
        check_tree_aa(&tree, &honest_inputs, &plain_values(report.honest_outputs())?)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
    }

    #[test]
    fn rbc_consistency_under_equivocating_broadcaster(seed in any::<u64>()) {
        // Drive n instances by hand; the Byzantine broadcaster (id 0)
        // sends different Inits to different parties; consistency must
        // hold: at most one value delivered across honest parties.
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let t = rng.gen_range(1..=2usize);
        let n = 3 * t + 1;
        let mut machines: Vec<async_aa::RbcInstance<u32>> =
            (0..n).map(|_| async_aa::RbcInstance::new(n, t, PartyId(0))).collect();
        // Byzantine init: value i%2 to party i.
        let mut queue: Vec<(PartyId, usize, RbcMsg<u32>)> = (1..n)
            .map(|i| (PartyId(0), i, RbcMsg::Init((i % 2) as u32)))
            .collect();
        while let Some((from, to, msg)) = queue.pop() {
            let (outs, _) = machines[to].on_message(from, &msg);
            for o in outs {
                for dst in 0..n {
                    queue.push((PartyId(to), dst, o.clone()));
                }
            }
        }
        let delivered: Vec<u32> =
            (1..n).filter_map(|i| machines[i].delivered().copied()).collect();
        if let Some(&first) = delivered.first() {
            prop_assert!(delivered.iter().all(|&v| v == first),
                "consistency violated: {delivered:?}");
        }
    }
}
