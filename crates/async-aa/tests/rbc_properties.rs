//! Property tests for Bracha reliable broadcast ([`RbcInstance`]):
//! consistency, totality and validity under randomized asynchronous
//! schedules with crashing and equivocating adversaries.
//!
//! The driver delivers messages from a pending pool in seeded-random
//! order until the pool drains — a fair asynchronous schedule — so
//! totality can be asserted exactly: if any honest party delivered, all
//! honest parties have delivered the same value by quiescence.

use std::collections::VecDeque;

use async_aa::{RbcInstance, RbcMsg};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sim_net::PartyId;

struct Net {
    machines: Vec<RbcInstance<u32>>,
    honest: Vec<bool>,
    /// Pending (from, to, msg) deliveries, consumed in random order.
    pool: VecDeque<(PartyId, PartyId, RbcMsg<u32>)>,
    rng: ChaCha8Rng,
}

impl Net {
    fn new(n: usize, t: usize, broadcaster: PartyId, byz: &[usize], seed: u64) -> Self {
        let mut honest = vec![true; n];
        for &b in byz {
            honest[b] = false;
        }
        Net {
            machines: (0..n)
                .map(|_| RbcInstance::new(n, t, broadcaster))
                .collect(),
            honest,
            pool: VecDeque::new(),
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    fn n(&self) -> usize {
        self.machines.len()
    }

    /// An honest party broadcasts: one copy to every party.
    fn broadcast(&mut self, from: PartyId, msg: RbcMsg<u32>) {
        for to in 0..self.n() {
            self.pool.push_back((from, PartyId(to), msg.clone()));
        }
    }

    /// Delivers pool messages in random order until quiescence. Honest
    /// recipients may emit further broadcasts; corrupted recipients drop
    /// everything (their traffic was injected up front).
    fn drain(&mut self) {
        while !self.pool.is_empty() {
            let pick = self.rng.gen_range(0..self.pool.len());
            let last = self.pool.len() - 1;
            self.pool.swap(pick, last);
            let (from, to, msg) = self.pool.pop_back().unwrap();
            if !self.honest[to.index()] {
                continue;
            }
            let (outs, _) = self.machines[to.index()].on_message(from, &msg);
            for out in outs {
                self.broadcast(to, out);
            }
        }
    }

    fn deliveries(&self) -> Vec<Option<u32>> {
        self.machines
            .iter()
            .zip(&self.honest)
            .filter(|(_, &h)| h)
            .map(|(m, _)| m.delivered().copied())
            .collect()
    }
}

/// Consistency + totality by quiescence: honest deliveries are
/// all-`None` or all-`Some(v)` for a single `v`; returns the value.
fn assert_consistent_and_total(net: &Net, label: &str) -> Option<u32> {
    let delivered = net.deliveries();
    let values: Vec<u32> = delivered.iter().filter_map(|d| *d).collect();
    if values.is_empty() {
        return None;
    }
    assert!(
        values.windows(2).all(|w| w[0] == w[1]),
        "{label}: consistency violated: {delivered:?}"
    );
    assert_eq!(
        values.len(),
        delivered.len(),
        "{label}: totality violated after quiescence: {delivered:?}"
    );
    Some(values[0])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Honest broadcaster, up to `t` crashed parties, random schedule:
    /// validity — everyone honest delivers the broadcaster's value.
    #[test]
    fn validity_under_crashes(seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let t = rng.gen_range(1..=3usize);
        let n = 3 * t + 1;
        let ncrash = rng.gen_range(0..=t);
        // Crash the last parties; the broadcaster is party 0, honest.
        let byz: Vec<usize> = (n - ncrash..n).collect();
        let broadcaster = PartyId(0);
        let value = rng.gen_range(0..100u32);
        let mut net = Net::new(n, t, broadcaster, &byz, rng.gen());
        net.broadcast(broadcaster, RbcMsg::Init(value));
        net.drain();
        prop_assert_eq!(
            assert_consistent_and_total(&net, "crash"),
            Some(value),
            "honest broadcaster's value must be delivered by all honest parties"
        );
    }

    /// The broadcaster crashes mid-Init (its value reaches only a random
    /// prefix of the parties): agreement and totality still hold —
    /// honest deliveries are all-or-nothing on the broadcast value.
    #[test]
    fn agreement_under_broadcaster_crash(seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let t = rng.gen_range(1..=3usize);
        let n = 3 * t + 1;
        let broadcaster = PartyId(0);
        let value = 7u32;
        let reach = rng.gen_range(0..=n);
        let mut net = Net::new(n, t, broadcaster, &[0], rng.gen());
        for to in 0..reach {
            net.pool.push_back((broadcaster, PartyId(to), RbcMsg::Init(value)));
        }
        net.drain();
        if let Some(v) = assert_consistent_and_total(&net, "broadcaster-crash") {
            prop_assert_eq!(v, value);
        }
    }

    /// Byzantine equivocation: the corrupted broadcaster (plus helpers)
    /// splits two values across the parties at every protocol step.
    /// Consistency and totality must hold; if a value is delivered it is
    /// one of the two equivocated values.
    #[test]
    fn consistency_under_equivocation(seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let t = rng.gen_range(1..=3usize);
        let n = 3 * t + 1;
        let nbyz = rng.gen_range(1..=t);
        let byz: Vec<usize> = (0..nbyz).collect(); // broadcaster included
        let broadcaster = PartyId(0);
        let (va, vb) = (3u32, 8u32);
        let mut net = Net::new(n, t, broadcaster, &byz, rng.gen());
        // Every corrupted identity plays both sides of the split: Init
        // (broadcaster only), Echo and Ready for `va` to even-indexed
        // parties and for `vb` to odd-indexed ones.
        for &b in &byz {
            for to in 0..n {
                let v = if to % 2 == 0 { va } else { vb };
                if b == broadcaster.index() {
                    net.pool.push_back((PartyId(b), PartyId(to), RbcMsg::Init(v)));
                }
                net.pool.push_back((PartyId(b), PartyId(to), RbcMsg::Echo(v)));
                net.pool.push_back((PartyId(b), PartyId(to), RbcMsg::Ready(v)));
            }
        }
        net.drain();
        if let Some(v) = assert_consistent_and_total(&net, "equivocate") {
            prop_assert!(v == va || v == vb, "delivered fabricated value {v}");
        }
    }

    /// Fabricated readies from `t` corrupted parties alone can never
    /// cause any delivery (delivery needs `2t + 1` distinct senders).
    #[test]
    fn forged_readies_alone_never_deliver(seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let t = rng.gen_range(1..=3usize);
        let n = 3 * t + 1;
        let byz: Vec<usize> = (0..t).collect();
        let mut net = Net::new(n, t, PartyId(0), &byz, rng.gen());
        for &b in &byz {
            for to in 0..n {
                net.pool.push_back((PartyId(b), PartyId(to), RbcMsg::Ready(13)));
            }
        }
        net.drain();
        prop_assert!(net.deliveries().iter().all(Option::is_none));
    }
}
