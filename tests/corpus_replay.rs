//! Replays the persisted fuzz corpus on every `cargo test`.
//!
//! `fuzz-corpus/` holds minimized repro cases: each entered the corpus
//! when the fuzzer found an invariant violation (plus a few seeded
//! exemplars), and each must pass now that the underlying bug is fixed —
//! so every bug the fuzzer ever caught stays a permanent tier-1
//! regression test. See the "Fuzzing & property testing" section of
//! EXPERIMENTS.md for the full contract.

use std::path::Path;

#[test]
fn fuzz_corpus_replays_clean() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fuzz-corpus");
    let replayed = aa_fuzz::replay_corpus(&dir)
        .unwrap_or_else(|failures| panic!("corpus cases failed:\n{failures}"));
    assert!(
        replayed >= 3,
        "expected at least the seeded exemplar cases, found {replayed}"
    );
}
