//! Golden-trace conformance suite: every checked-in flight recording
//! under `golden-traces/` must be reproduced byte-for-byte by re-running
//! its scenario, and must satisfy all `aa-trace` invariant checkers.
//!
//! A golden file's `label` field stores `"<scenario>:<seed>"`, so the
//! file alone determines how to regenerate it
//! (`treeaa trace --scenario <name> --seed <S>` emits the same bytes).
//! Any protocol or engine change that alters observable behaviour —
//! message order, grade assignment, hull evolution, corruption timing —
//! shows up here as a readable first-divergence diff instead of a silent
//! semantic drift.

use std::fs;
use std::path::PathBuf;

use aa_fuzz::{
    record_scenario, run_case_traced, AdvAtom, AdvAtomKind, Family, FuzzCase, ProtocolKind,
    TreeSpec, SCENARIO_NAMES,
};
use aa_trace::Trace;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("golden-traces")
}

/// All golden files, sorted by name for deterministic test order.
fn golden_files() -> Vec<(String, String)> {
    let mut files: Vec<(String, String)> = fs::read_dir(golden_dir())
        .expect("golden-traces/ directory exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .map(|p| {
            let text = fs::read_to_string(&p).expect("readable golden file");
            (p.file_name().unwrap().to_string_lossy().into_owned(), text)
        })
        .collect();
    files.sort();
    assert!(
        (4..=10).contains(&files.len()),
        "expected 4-10 golden traces, found {}",
        files.len()
    );
    files
}

/// Panics with a readable event-level diff of the first divergence.
fn assert_traces_identical(file: &str, golden: &Trace, fresh: &Trace) {
    assert_eq!(
        (golden.n, golden.t, &golden.label),
        (fresh.n, fresh.t, &fresh.label),
        "{file}: trace header diverged"
    );
    for (i, (g, f)) in golden.events.iter().zip(&fresh.events).enumerate() {
        assert_eq!(
            g,
            f,
            "{file}: first divergence at event {i} of {}:\n  golden: {g}\n  fresh:  {f}",
            golden.events.len()
        );
    }
    assert_eq!(
        golden.events.len(),
        fresh.events.len(),
        "{file}: traces agree on the first {} events but lengths differ",
        golden.events.len().min(fresh.events.len())
    );
}

#[test]
fn golden_traces_replay_byte_identically() {
    for (file, text) in golden_files() {
        let golden = Trace::parse(text.trim())
            .unwrap_or_else(|e| panic!("{file}: unparseable golden trace: {e}"));
        let (name, seed) = golden
            .label
            .split_once(':')
            .unwrap_or_else(|| panic!("{file}: label `{}` is not <scenario>:<seed>", golden.label));
        let seed: u64 = seed
            .parse()
            .unwrap_or_else(|_| panic!("{file}: bad seed in label `{}`", golden.label));
        let fresh =
            record_scenario(name, seed).unwrap_or_else(|e| panic!("{file}: replay failed: {e}"));
        // Event-level diff first (readable), then the byte-level contract.
        assert_traces_identical(&file, &golden, &fresh);
        assert_eq!(
            text.trim(),
            fresh.to_canonical_string(),
            "{file}: events match but serialized bytes differ"
        );
    }
}

#[test]
fn golden_traces_pass_every_invariant_checker() {
    for (file, text) in golden_files() {
        let golden = Trace::parse(text.trim()).expect("parseable golden trace");
        aa_trace::check_all(&golden).unwrap_or_else(|e| panic!("{file}: {e}"));
        assert!(!golden.events.is_empty(), "{file}: empty trace");
    }
}

#[test]
fn golden_traces_cover_every_scenario() {
    let names: Vec<String> = golden_files()
        .into_iter()
        .map(|(file, _)| file.trim_end_matches(".trace.json").to_string())
        .collect();
    for name in SCENARIO_NAMES {
        assert!(
            names.iter().any(|n| n == name),
            "scenario `{name}` has no golden trace (have: {names:?})"
        );
    }
}

/// The acceptance criterion of the tracing layer: the same seed and
/// scenario produce byte-identical trace JSON under sequential and
/// parallel stepping, across party counts ([`run_case_traced`] fails
/// with `TraceDeterminism` otherwise).
#[test]
fn traces_are_mode_invariant_across_party_counts() {
    for (n, protocol) in [
        (4, ProtocolKind::TreeAaGradecast),
        (7, ProtocolKind::TreeAaGradecast),
        (16, ProtocolKind::TreeAaGradecast),
        (64, ProtocolKind::TreeAaHalving),
    ] {
        let t = (n - 1) / 3;
        let case = FuzzCase {
            seed: 99,
            tree: TreeSpec {
                family: Family::Caterpillar,
                size: 12,
                seed: 7,
            },
            n,
            t,
            protocol,
            inputs: (0..n).map(|i| (i * 5) % 13).collect(),
            atoms: vec![AdvAtom {
                kind: AdvAtomKind::Equivocate,
                victims: vec![0],
            }],
            faults: Vec::new(),
        };
        let traced =
            run_case_traced(&case).unwrap_or_else(|e| panic!("n={n} {:?}: {e}", protocol.name()));
        assert_eq!(traced.trace.n, n);
        assert!(!traced.trace.events.is_empty());
    }
}
