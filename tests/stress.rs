//! Wider-grid stress tests: larger trees, larger party counts, longer
//! adversarial schedules. Kept within a few seconds of runtime so they run
//! in the default suite.

use std::sync::Arc;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use tree_aa_repro::real_aa::adversary::{equal_split_schedule, BudgetSplitEquivocator};
use tree_aa_repro::real_aa::{RealAaConfig, RealAaParty};
use tree_aa_repro::sim_net::{run_simulation, PartyId, Passive, SimConfig};
use tree_aa_repro::tree_aa::adversary::TreeAaChaos;
use tree_aa_repro::tree_aa::{check_tree_aa, EngineKind, TreeAaConfig, TreeAaParty};
use tree_aa_repro::tree_model::{generate, VertexId};

#[test]
fn tree_aa_on_a_16k_vertex_tree() {
    let tree = Arc::new(generate::caterpillar(5_500, 2));
    assert!(tree.vertex_count() > 16_000);
    let (n, t) = (4, 1);
    let m = tree.vertex_count();
    let inputs: Vec<VertexId> = (0..n)
        .map(|i| tree.vertices().nth((i * (m / n)) % m).unwrap())
        .collect();
    let cfg = TreeAaConfig::new(n, t, EngineKind::Gradecast, &tree).unwrap();
    let report = run_simulation(
        SimConfig {
            n,
            t,
            max_rounds: cfg.total_rounds() + 5,
        },
        |id, _| TreeAaParty::new(id, cfg.clone(), Arc::clone(&tree), inputs[id.index()]),
        Passive,
    )
    .unwrap();
    check_tree_aa(&tree, &inputs, &report.honest_outputs()).unwrap();
}

#[test]
fn realaa_with_25_parties_under_full_budget_attack() {
    let (n, t) = (25, 8);
    let d = 10_000.0;
    let cfg = RealAaConfig::new(n, t, 1.0, d).unwrap();
    let inputs: Vec<f64> = (0..n).map(|i| d * i as f64 / (n - 1) as f64).collect();
    let byz: Vec<PartyId> = (0..t).map(PartyId).collect();
    let adv = BudgetSplitEquivocator::new(
        n,
        byz.clone(),
        equal_split_schedule(t, cfg.iterations() as usize),
    );
    let report = run_simulation(
        SimConfig {
            n,
            t,
            max_rounds: cfg.rounds() + 5,
        },
        |id, _| RealAaParty::new(id, cfg, inputs[id.index()]),
        adv,
    )
    .unwrap();
    let outs = report.honest_outputs();
    let lo = outs.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = outs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    assert!(hi - lo <= 1.0, "spread {} > 1", hi - lo);
    let honest_lo = inputs[t..].iter().cloned().fold(f64::INFINITY, f64::min);
    let honest_hi = inputs[t..]
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(outs
        .iter()
        .all(|&o| o >= honest_lo - 1e-9 && o <= honest_hi + 1e-9));
}

#[test]
fn hundred_randomized_tree_aa_runs() {
    let mut rng = ChaCha8Rng::seed_from_u64(2026);
    for _ in 0..100 {
        let size = rng.gen_range(3..60usize);
        let tree = Arc::new(generate::relabel_shuffled(
            &generate::random_prufer(size, &mut rng),
            &mut rng,
        ));
        let t = rng.gen_range(1..=2usize);
        let n = 3 * t + 1;
        let m = tree.vertex_count();
        let inputs: Vec<VertexId> = (0..n)
            .map(|_| tree.vertices().nth(rng.gen_range(0..m)).unwrap())
            .collect();
        let nbad = rng.gen_range(0..=t);
        let byz: Vec<PartyId> = (0..nbad).map(|i| PartyId((i * 3 + 1) % n)).collect();
        let cfg = TreeAaConfig::new(n, t, EngineKind::Gradecast, &tree).unwrap();
        let adv = TreeAaChaos::new(byz.clone(), rng.gen(), 2.0 * m as f64);
        let report = run_simulation(
            SimConfig {
                n,
                t,
                max_rounds: cfg.total_rounds() + 5,
            },
            |id, _| TreeAaParty::new(id, cfg.clone(), Arc::clone(&tree), inputs[id.index()]),
            adv,
        )
        .unwrap();
        let honest_inputs: Vec<VertexId> = (0..n)
            .filter(|i| !byz.iter().any(|b| b.index() == *i))
            .map(|i| inputs[i])
            .collect();
        check_tree_aa(&tree, &honest_inputs, &report.honest_outputs()).unwrap();
    }
}

#[test]
fn every_possible_input_pattern_on_a_small_tree() {
    // Exhaustive: all 4-tuples of inputs over a 5-vertex tree (625
    // patterns), honest run; Definition 2 must hold for each.
    let tree = Arc::new(generate::caterpillar(3, 1)); // 6 vertices
    let vs: Vec<VertexId> = tree.vertices().collect();
    let (n, t) = (4, 1);
    let cfg = TreeAaConfig::new(n, t, EngineKind::Halving, &tree).unwrap();
    for a in 0..vs.len() {
        for b in 0..vs.len() {
            for c in 0..vs.len() {
                for d in 0..vs.len() {
                    let inputs = [vs[a], vs[b], vs[c], vs[d]];
                    let report = run_simulation(
                        SimConfig {
                            n,
                            t,
                            max_rounds: cfg.total_rounds() + 5,
                        },
                        |id, _| {
                            TreeAaParty::new(id, cfg.clone(), Arc::clone(&tree), inputs[id.index()])
                        },
                        Passive,
                    )
                    .unwrap();
                    check_tree_aa(&tree, &inputs, &report.honest_outputs())
                        .unwrap_or_else(|e| panic!("inputs {a},{b},{c},{d}: {e}"));
                }
            }
        }
    }
}
