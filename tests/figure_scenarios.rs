//! The paper's figures, end to end: each figure's exact scenario is
//! reproduced through the public API and its stated conclusion asserted.

use std::sync::Arc;

use tree_aa_repro::sim_net::{run_simulation, Passive, SimConfig};
use tree_aa_repro::tree_aa::{
    check_paths_finder, EngineKind, PathsFinderConfig, PathsFinderParty, ProjectionAaConfig,
    ProjectionAaParty,
};
use tree_aa_repro::tree_model::{list_construction, Tree, VertexId};

/// Figure 1: hull of {u1, u2, u3} = {u1, ..., u5}.
#[test]
fn figure1_convex_hull() {
    let t = Tree::from_labeled_edges(
        ["u1", "u2", "u3", "u4", "u5", "w1", "w2"],
        [
            ("u1", "u4"),
            ("u4", "u5"),
            ("u5", "u2"),
            ("u4", "u3"),
            ("w1", "u5"),
            ("w2", "u1"),
        ],
    )
    .unwrap();
    let s: Vec<VertexId> = ["u1", "u2", "u3"]
        .iter()
        .map(|l| t.vertex(l).unwrap())
        .collect();
    let hull = t.convex_hull(&s);
    let mut labels: Vec<_> = hull.iter().map(|v| t.label(v).to_string()).collect();
    labels.sort();
    assert_eq!(labels, ["u1", "u2", "u3", "u4", "u5"]);
}

fn figure3_tree() -> Tree {
    Tree::from_labeled_edges(
        ["v1", "v2", "v3", "v4", "v5", "v6", "v7", "v8"],
        [
            ("v1", "v2"),
            ("v2", "v3"),
            ("v3", "v6"),
            ("v3", "v7"),
            ("v2", "v4"),
            ("v4", "v8"),
            ("v2", "v5"),
        ],
    )
    .unwrap()
}

/// Figure 2 / Section 5: projections onto a known path stay in the hull
/// and the protocol outputs 1-close valid path vertices.
#[test]
fn figure2_projection_protocol() {
    let tree = Arc::new(figure3_tree());
    // Known path v1 .. v2 .. v4 .. v8 intersects the hull of the honest
    // inputs below (their hull contains v2).
    let path = Arc::new(tree.path(tree.vertex("v1").unwrap(), tree.vertex("v8").unwrap()));
    let inputs: Vec<VertexId> = ["v6", "v5", "v3", "v7"]
        .iter()
        .map(|l| tree.vertex(l).unwrap())
        .collect();
    let cfg = ProjectionAaConfig::new(4, 1, EngineKind::Gradecast, Arc::clone(&path)).unwrap();
    let report = run_simulation(
        SimConfig {
            n: 4,
            t: 1,
            max_rounds: cfg.rounds() + 5,
        },
        |id, _| ProjectionAaParty::new(id, cfg.clone(), &tree, inputs[id.index()]),
        Passive,
    )
    .unwrap();
    let outputs = report.honest_outputs();
    let hull = tree.convex_hull(&inputs);
    for &o in &outputs {
        assert!(path.contains(o), "output must be on the known path");
        assert!(hull.contains(o), "output must be valid");
    }
    for &a in &outputs {
        for &b in &outputs {
            assert!(tree.distance(a, b) <= 1);
        }
    }
}

/// Figure 3: the exact Euler list from Section 6.
#[test]
fn figure3_euler_list() {
    let t = figure3_tree();
    let l = list_construction(&t);
    let labels: Vec<&str> = l.entries().iter().map(|&v| t.label(v).as_str()).collect();
    assert_eq!(
        labels,
        [
            "v1", "v2", "v3", "v6", "v3", "v7", "v3", "v2", "v4", "v8", "v4", "v2", "v5", "v2",
            "v1"
        ]
    );
}

/// Figure 4 / Section 6: with honest inputs {v3, v6, v5}, a planted
/// Byzantine input can steer the agreed vertex to v4 or v8 — outside the
/// honest hull — but the root path still intersects the hull (Lemma 3),
/// and Lemma 4 holds regardless.
#[test]
fn figure4_invalid_vertex_valid_subtree() {
    let tree = Arc::new(figure3_tree());
    let honest: Vec<VertexId> = ["v3", "v6", "v5"]
        .iter()
        .map(|l| tree.vertex(l).unwrap())
        .collect();
    let hull = tree.convex_hull(&honest);
    let cfg = PathsFinderConfig::new(4, 1, EngineKind::Gradecast, &tree).unwrap();

    let mut steered_outside = false;
    for planted in tree.vertices() {
        let inputs = [honest[0], honest[1], honest[2], planted];
        let report = run_simulation(
            SimConfig {
                n: 4,
                t: 1,
                max_rounds: cfg.rounds() + 5,
            },
            |id, _| PathsFinderParty::new(id, cfg.clone(), Arc::clone(&tree), inputs[id.index()]),
            Passive,
        )
        .unwrap();
        let paths: Vec<_> = (0..3).map(|i| report.outputs[i].clone().unwrap()).collect();
        check_paths_finder(&tree, &honest, &paths).unwrap();
        for p in &paths {
            let (_, end) = p.endpoints();
            if !hull.contains(end) {
                steered_outside = true;
                // The escape must stay inside the subtree rooted at a valid
                // vertex (here v2's subtree: v4 or v8).
                let label = tree.label(end).as_str();
                assert!(
                    label == "v4" || label == "v8",
                    "escape landed on unexpected vertex {label}"
                );
            }
        }
    }
    assert!(steered_outside, "the Figure 4 escape must be reachable");
}

/// Degenerate input spaces: single vertex and single edge are handled
/// without any communication (Section 2's triviality remark).
#[test]
fn trivial_input_spaces() {
    use tree_aa_repro::tree_aa::{TreeAaConfig, TreeAaParty};
    use tree_aa_repro::tree_model::generate;
    for size in [1usize, 2] {
        let tree = Arc::new(generate::path(size));
        let cfg = TreeAaConfig::new(4, 1, EngineKind::Gradecast, &tree).unwrap();
        assert!(cfg.trivial());
        assert_eq!(cfg.total_rounds(), 0);
        let inputs: Vec<VertexId> = (0..4)
            .map(|i| tree.vertices().nth(i % size).unwrap())
            .collect();
        let report = run_simulation(
            SimConfig {
                n: 4,
                t: 1,
                max_rounds: 3,
            },
            |id, _| TreeAaParty::new(id, cfg.clone(), Arc::clone(&tree), inputs[id.index()]),
            Passive,
        )
        .unwrap();
        assert_eq!(report.honest_outputs(), inputs);
        assert_eq!(report.metrics.total_messages(), 0);
    }
}
