//! Metrics accounting: the engine's [`sim_net::Metrics`] and the flight
//! recorder are two independent observers of the same run, so their
//! totals must agree *exactly* — honest messages, total messages and
//! bytes recomputed from the traced `broadcast`/`unicast`/`inject`
//! events equal the `RunReport` counters, in both step modes, across a
//! seeded stream of generated fuzz cases.

use aa_fuzz::{gen_case, run_case_traced};
use aa_trace::recomputed_totals;

const CASES: u64 = 50;
const SEED: u64 = 0xACC0;

#[test]
fn metrics_equal_trace_totals_over_seeded_cases() {
    for index in 0..CASES {
        let case = gen_case(SEED, index);
        // `run_case_traced` runs the case under Sequential *and*
        // Parallel stepping and requires the two traces byte-identical,
        // so one recomputation covers both modes; the per-mode metrics
        // are still compared against it separately below.
        let traced = run_case_traced(&case)
            .unwrap_or_else(|e| panic!("case {index} ({}): {e}", case.protocol.name()));
        let totals = recomputed_totals(&traced.trace);
        for (mode, metrics) in [
            ("sequential", &traced.seq_metrics),
            ("parallel", &traced.par_metrics),
        ] {
            assert_eq!(
                totals.honest_messages,
                metrics.honest_messages(),
                "case {index} {mode}: honest message totals diverge"
            );
            assert_eq!(
                totals.messages(),
                metrics.total_messages(),
                "case {index} {mode}: total message counts diverge"
            );
            assert_eq!(
                totals.bytes,
                metrics.total_bytes(),
                "case {index} {mode}: byte totals diverge"
            );
        }
        // The traced run must report the same outcome as the plain one.
        assert_eq!(
            traced.stats,
            aa_fuzz::run_case(&case).unwrap(),
            "case {index}: traced and untraced stats diverge"
        );
    }
}
