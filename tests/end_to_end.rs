//! Cross-crate integration tests: full `TreeAA` executions across tree
//! families × engines × adversary strategies, plus round-count and
//! determinism contracts.

use std::sync::Arc;

use aa_check::props::honest_subset;
use tree_aa_repro::sim_net::{
    run_simulation, CrashAdversary, PartyId, Passive, SelectiveOmission, SimConfig,
};
use tree_aa_repro::tree_aa::adversary::TreeAaChaos;
use tree_aa_repro::tree_aa::{
    check_tree_aa, EngineKind, NowakRybickiConfig, NowakRybickiParty, TreeAaConfig, TreeAaParty,
};
use tree_aa_repro::tree_model::{generate, Tree, VertexId};

fn families() -> Vec<(&'static str, Tree)> {
    vec![
        ("path", generate::path(40)),
        ("star", generate::star(25)),
        ("binary", generate::balanced_kary(2, 5)),
        ("ternary", generate::balanced_kary(3, 3)),
        ("caterpillar", generate::caterpillar(12, 3)),
        ("spider", generate::spider(5, 7)),
        ("broom", generate::broom(10, 8)),
    ]
}

fn inputs_for(tree: &Tree, n: usize, stride: usize) -> Vec<VertexId> {
    let m = tree.vertex_count();
    (0..n)
        .map(|i| tree.vertices().nth((i * stride) % m).unwrap())
        .collect()
}

#[test]
fn tree_aa_all_families_all_engines_honest() {
    for (name, tree) in families() {
        let tree = Arc::new(tree);
        for engine in [EngineKind::Gradecast, EngineKind::Halving] {
            let (n, t) = (7, 2);
            let inputs = inputs_for(&tree, n, 11);
            let cfg = TreeAaConfig::new(n, t, engine, &tree).unwrap();
            let report = run_simulation(
                SimConfig {
                    n,
                    t,
                    max_rounds: cfg.total_rounds() + 5,
                },
                |id, _| TreeAaParty::new(id, cfg.clone(), Arc::clone(&tree), inputs[id.index()]),
                Passive,
            )
            .unwrap();
            assert_eq!(
                report.communication_rounds(),
                cfg.total_rounds(),
                "{name}/{engine:?}: round count contract"
            );
            check_tree_aa(&tree, &inputs, &report.honest_outputs())
                .unwrap_or_else(|e| panic!("{name}/{engine:?}: {e}"));
        }
    }
}

#[test]
fn tree_aa_all_families_under_chaos() {
    for (name, tree) in families() {
        let tree = Arc::new(tree);
        let (n, t) = (7, 2);
        let inputs = inputs_for(&tree, n, 5);
        let byz = vec![PartyId(1), PartyId(4)];
        let cfg = TreeAaConfig::new(n, t, EngineKind::Gradecast, &tree).unwrap();
        let adv = TreeAaChaos::new(byz.clone(), 0xC0FFEE, 2.0 * tree.vertex_count() as f64);
        let report = run_simulation(
            SimConfig {
                n,
                t,
                max_rounds: cfg.total_rounds() + 5,
            },
            |id, _| TreeAaParty::new(id, cfg.clone(), Arc::clone(&tree), inputs[id.index()]),
            adv,
        )
        .unwrap();
        let honest_inputs = honest_subset(&inputs, &byz);
        check_tree_aa(&tree, &honest_inputs, &report.honest_outputs())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn tree_aa_under_crash_and_omission() {
    let tree = Arc::new(generate::caterpillar(15, 2));
    let (n, t) = (7, 2);
    let inputs = inputs_for(&tree, n, 9);
    let cfg = TreeAaConfig::new(n, t, EngineKind::Gradecast, &tree).unwrap();

    // Crash mid-protocol.
    let report = run_simulation(
        SimConfig {
            n,
            t,
            max_rounds: cfg.total_rounds() + 5,
        },
        |id, _| TreeAaParty::new(id, cfg.clone(), Arc::clone(&tree), inputs[id.index()]),
        CrashAdversary {
            crashes: vec![(PartyId(2), 4), (PartyId(6), cfg.phase1_rounds() + 1)],
        },
    )
    .unwrap();
    let honest_inputs = honest_subset(&inputs, &[PartyId(2), PartyId(6)]);
    check_tree_aa(&tree, &honest_inputs, &report.honest_outputs()).unwrap();

    // Selective omission for the whole run.
    for seed in 0..10 {
        let adv = SelectiveOmission::new(vec![PartyId(0), PartyId(3)], 0.4, seed);
        let report = run_simulation(
            SimConfig {
                n,
                t,
                max_rounds: cfg.total_rounds() + 5,
            },
            |id, _| TreeAaParty::new(id, cfg.clone(), Arc::clone(&tree), inputs[id.index()]),
            adv,
        )
        .unwrap();
        let honest_inputs = honest_subset(&inputs, &[PartyId(0), PartyId(3)]);
        check_tree_aa(&tree, &honest_inputs, &report.honest_outputs()).unwrap();
    }
}

#[test]
fn baseline_and_tree_aa_agree_on_the_contract() {
    // Both protocols must satisfy Definition 2 on the same scenario (their
    // outputs may differ — the contract is per-protocol).
    let tree = Arc::new(generate::spider(4, 10));
    let (n, t) = (4, 1);
    let inputs = inputs_for(&tree, n, 13);

    let cfg = TreeAaConfig::new(n, t, EngineKind::Gradecast, &tree).unwrap();
    let report = run_simulation(
        SimConfig {
            n,
            t,
            max_rounds: cfg.total_rounds() + 5,
        },
        |id, _| TreeAaParty::new(id, cfg.clone(), Arc::clone(&tree), inputs[id.index()]),
        Passive,
    )
    .unwrap();
    check_tree_aa(&tree, &inputs, &report.honest_outputs()).unwrap();

    let nr = NowakRybickiConfig::new(n, t, &tree).unwrap();
    let report = run_simulation(
        SimConfig {
            n,
            t,
            max_rounds: nr.rounds() + 5,
        },
        |id, _| NowakRybickiParty::new(id, nr.clone(), Arc::clone(&tree), inputs[id.index()]),
        Passive,
    )
    .unwrap();
    check_tree_aa(&tree, &inputs, &report.honest_outputs()).unwrap();
}

#[test]
fn runs_are_deterministic_end_to_end() {
    let tree = Arc::new(generate::balanced_kary(3, 4));
    let (n, t) = (7, 2);
    let inputs = inputs_for(&tree, n, 17);
    let cfg = TreeAaConfig::new(n, t, EngineKind::Gradecast, &tree).unwrap();
    let run = |seed: u64| {
        let adv = TreeAaChaos::new(vec![PartyId(0)], seed, 2.0 * tree.vertex_count() as f64);
        run_simulation(
            SimConfig {
                n,
                t,
                max_rounds: cfg.total_rounds() + 5,
            },
            |id, _| TreeAaParty::new(id, cfg.clone(), Arc::clone(&tree), inputs[id.index()]),
            adv,
        )
        .unwrap()
    };
    let a = run(42);
    let b = run(42);
    assert_eq!(a.outputs, b.outputs);
    assert_eq!(a.metrics.total_messages(), b.metrics.total_messages());
    // A different seed is allowed to differ (and usually does in traffic).
    let c = run(43);
    assert_eq!(a.outputs.len(), c.outputs.len());
}

#[test]
fn identical_inputs_collapse_to_that_vertex_everywhere() {
    for (name, tree) in families() {
        let tree = Arc::new(tree);
        let v = tree.vertices().nth(tree.vertex_count() / 2).unwrap();
        let (n, t) = (4, 1);
        let inputs = vec![v; n];
        let cfg = TreeAaConfig::new(n, t, EngineKind::Gradecast, &tree).unwrap();
        let report = run_simulation(
            SimConfig {
                n,
                t,
                max_rounds: cfg.total_rounds() + 5,
            },
            |id, _| TreeAaParty::new(id, cfg.clone(), Arc::clone(&tree), inputs[id.index()]),
            Passive,
        )
        .unwrap();
        for out in report.honest_outputs() {
            assert_eq!(out, v, "{name}: unanimity must be preserved");
        }
    }
}

#[test]
fn larger_party_counts_work() {
    let tree = Arc::new(generate::caterpillar(20, 1));
    for (n, t) in [(10, 3), (13, 4), (16, 5)] {
        let inputs = inputs_for(&tree, n, 7);
        let cfg = TreeAaConfig::new(n, t, EngineKind::Gradecast, &tree).unwrap();
        let report = run_simulation(
            SimConfig {
                n,
                t,
                max_rounds: cfg.total_rounds() + 5,
            },
            |id, _| TreeAaParty::new(id, cfg.clone(), Arc::clone(&tree), inputs[id.index()]),
            Passive,
        )
        .unwrap();
        check_tree_aa(&tree, &inputs, &report.honest_outputs()).unwrap();
    }
}
