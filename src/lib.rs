//! Umbrella crate for the `tree-aa` reproduction workspace.
//!
//! Re-exports the public APIs of every member crate so that examples and
//! integration tests can address the whole system through a single
//! dependency. See the individual crates for full documentation:
//!
//! * [`tree_model`] — labeled input-space trees (hulls, LCA, Euler lists,
//!   projections, generators);
//! * [`sim_net`] — the deterministic synchronous network simulator and its
//!   Byzantine adversary framework;
//! * [`gradecast`] — the three-round graded-broadcast primitive;
//! * [`real_aa`] — round-optimal approximate agreement on real values;
//! * [`tree_aa`] — the paper's contribution: `PathsFinder` and `TreeAA`,
//!   plus baselines;
//! * [`lower_bound`] — Fekete-style lower-bound calculators (Theorems 1–2);
//! * [`byz_agreement`] — phase-king exact Byzantine agreement (the
//!   `O(n)`-round alternative `PathsFinder` avoids);
//! * [`async_net`] / [`async_aa`] — the asynchronous model: event-driven
//!   simulator, Bracha reliable broadcast, and the witness-technique
//!   `O(log D)` async tree AA the paper improves on synchronously.

#![warn(missing_docs)]
pub use async_aa;
pub use async_net;
pub use byz_agreement;
pub use gradecast;
pub use lower_bound;
pub use real_aa;
pub use sim_net;
pub use tree_aa;
pub use tree_model;
