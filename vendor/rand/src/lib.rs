//! Offline vendored stand-in for the subset of the `rand` 0.8 API used by
//! this workspace.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny trait surface it needs: [`RngCore`], [`SeedableRng`],
//! the [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`) and a
//! [`rngs::StdRng`]. The implementations are deterministic and portable,
//! which is all the simulator requires — adversaries own their seeds and a
//! run must be a pure function of them. The value streams are *not*
//! bit-compatible with upstream `rand`; every consumer in this workspace
//! only relies on determinism, never on a specific stream.

#![warn(missing_docs)]

/// A low-level source of random 32/64-bit words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        lo | (hi << 32)
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let word = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be created from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Creates the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates the generator from a `u64`, expanding it with SplitMix64
    /// (the same construction upstream `rand` uses).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types that can be sampled uniformly from their full value range by
/// [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = (u128::from(rng.next_u64()) % span) as $t;
                self.start.wrapping_add(draw)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                let draw = (u128::from(rng.next_u64()) % span) as $t;
                lo.wrapping_add(draw)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let unit = f64::sample_standard(rng) as $t;
                self.start + unit * (self.end - self.start)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let unit = f64::sample_standard(rng) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly from the full range of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool requires a probability");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Stock generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic "standard" generator: xoshiro256++.
    ///
    /// Statistically strong, tiny, and fully portable; the upstream
    /// `StdRng` makes the same no-stream-stability promise, so consumers
    /// only rely on determinism.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u32 = rng.gen_range(0..=4);
            assert!(y <= 4);
            let f: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }
}
