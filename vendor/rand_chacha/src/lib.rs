//! Offline vendored ChaCha8 generator for the workspace's `rand` traits.
//!
//! Implements the genuine ChaCha block function (8 double-rounds) over a
//! 256-bit seed, which is more than enough statistical quality for the
//! simulator's adversaries. Like the vendored `rand`, the stream is
//! deterministic and portable but not promised to be bit-compatible with
//! the upstream `rand_chacha` crate.

#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

/// A deterministic ChaCha-based generator with 8 double-rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key words (seed).
    key: [u32; 8],
    /// 64-bit block counter.
    counter: u64,
    /// Current block of output words.
    block: [u32; 16],
    /// Next word to serve from `block`; 16 means "generate a new block".
    cursor: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; 16] = [0; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds (column then diagonal).
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.cursor = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.block[self.cursor];
        self.cursor += 1;
        word
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            let mut bytes = [0u8; 4];
            bytes.copy_from_slice(&seed[i * 4..(i + 1) * 4]);
            *word = u32::from_le_bytes(bytes);
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            cursor: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn words_are_well_spread() {
        // Cheap sanity check that the block function is actually mixing:
        // bytes of the stream should hit most of their range.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut seen = [false; 256];
        for _ in 0..4096 {
            seen[(rng.next_u32() & 0xFF) as usize] = true;
        }
        let covered = seen.iter().filter(|&&s| s).count();
        assert!(covered > 250, "only {covered}/256 byte values seen");
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let _ = rng.gen_range(0..100u32);
        let mut fork = rng.clone();
        assert_eq!(rng.next_u64(), fork.next_u64());
    }
}
