//! Offline vendored micro-benchmark harness.
//!
//! Exposes the subset of the `criterion` 0.5 API this workspace's benches
//! use (`Criterion`, benchmark groups, `BenchmarkId`, `Bencher::iter`, the
//! `criterion_group!`/`criterion_main!` macros) backed by a simple
//! wall-clock loop: warm up, calibrate an iteration count that fills the
//! configured measurement window, then report the mean time per iteration.
//!
//! Besides the human-readable line, every benchmark emits a
//! `BENCHJSON {...}` line so scripts can scrape results into the
//! `BENCH_*.json` files recorded in the repository.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a value or the computation behind
/// it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier: function name plus a parameter rendering.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// An id for benchmark `name` at parameter `param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            name: name.into(),
            param: param.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.name, self.param)
    }
}

/// The timing loop handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    /// Mean nanoseconds per iteration, filled by [`Bencher::iter`].
    mean_ns: f64,
}

impl Bencher {
    /// Runs `routine` repeatedly and records its mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run until the warm-up window elapses (at least once).
        let warm_start = Instant::now();
        let mut warm_iters: u32 = 0;
        loop {
            black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        let est = warm_start.elapsed().as_secs_f64() / f64::from(warm_iters);

        // Calibrate an iteration count that roughly fills the measurement
        // window, then time it as one batch.
        let target = self.measurement.as_secs_f64();
        let iters = ((target / est.max(1e-9)).ceil() as u64).clamp(1, 1_000_000);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let total = start.elapsed().as_secs_f64();
        self.mean_ns = total * 1e9 / iters as f64;
    }
}

/// A named collection of related benchmarks sharing loop settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    warm_up: Duration,
    measurement: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the vendored harness calibrates its
    /// own iteration counts from the measurement window instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement window per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Sets the warm-up window per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    fn run_one(&mut self, label: String, mut routine: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            mean_ns: f64::NAN,
        };
        routine(&mut b);
        let mean = b.mean_ns;
        let human = if mean >= 1e9 {
            format!("{:.3} s", mean / 1e9)
        } else if mean >= 1e6 {
            format!("{:.3} ms", mean / 1e6)
        } else if mean >= 1e3 {
            format!("{:.3} µs", mean / 1e3)
        } else {
            format!("{mean:.1} ns")
        };
        println!("{}/{label:<40} time: {human}", self.name);
        println!(
            "BENCHJSON {{\"group\":\"{}\",\"bench\":\"{label}\",\"mean_ns\":{mean:.1}}}",
            self.name
        );
    }

    /// Benchmarks `routine` under `id` with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(id.to_string(), |b| routine(b, input));
        self
    }

    /// Benchmarks `routine` under a plain string id.
    pub fn bench_function<F>(&mut self, id: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id.to_string(), |b| routine(b));
        self
    }

    /// Ends the group (purely cosmetic in the vendored harness).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group with default loop settings.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            _criterion: self,
        }
    }
}

/// Bundles benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Expands to `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("vendored");
        g.measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        let mut observed = 0.0;
        g.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
            observed = b.mean_ns;
        });
        g.finish();
        assert!(observed.is_finite() && observed > 0.0);
    }

    #[test]
    fn id_renders_name_and_param() {
        assert_eq!(BenchmarkId::new("fanout", 256).to_string(), "fanout/256");
    }
}
