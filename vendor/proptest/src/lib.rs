//! Offline vendored property-testing shim.
//!
//! Implements the subset of the `proptest` API this workspace uses: the
//! [`Strategy`] trait with `prop_map`, `any::<T>()`, integer-range and
//! boolean strategies, tuple composition, the [`proptest!`] macro, and the
//! `prop_assert*` macros. Cases are generated from a deterministic ChaCha
//! stream keyed by the test name and case index, so failures reproduce
//! exactly. Shrinking is not implemented — a failing case panics with its
//! inputs' `Debug` rendering instead.

#![warn(missing_docs)]

use std::ops::Range;

pub use rand::Rng;

/// Test-runner plumbing used by the [`proptest!`] macro expansion.
pub mod test_runner {
    use rand::{RngCore, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// A failed test case (the shim aborts by panic instead of shrinking).
    #[derive(Clone, Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failure carrying `reason`.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// The deterministic generator backing one test case.
    #[derive(Clone, Debug)]
    pub struct TestRng(ChaCha8Rng);

    impl TestRng {
        /// A generator keyed by (test name, case index): every case of
        /// every test draws from its own reproducible stream.
        pub fn deterministic(case: u64, test_name: &str) -> Self {
            let mut key: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                key ^= u64::from(b);
                key = key.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(ChaCha8Rng::seed_from_u64(
                key ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ))
        }
    }

    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }

        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

use test_runner::TestRng;

/// Per-test configuration; only the case count is honoured.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: std::fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: std::fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing one fixed value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// A strategy drawing `T` uniformly from its full value range.
pub fn any<T: rand::Standard + std::fmt::Debug>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: rand::Standard + std::fmt::Debug> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

/// Namespaced stock strategies (`prop::bool::ANY`, …).
pub mod prop {
    /// Boolean strategies.
    pub mod bool {
        use crate::test_runner::TestRng;
        use rand::Rng;

        /// A uniformly random boolean.
        #[derive(Clone, Copy, Debug)]
        pub struct BoolAny;

        /// The uniform boolean strategy.
        pub const ANY: BoolAny = BoolAny;

        impl crate::Strategy for BoolAny {
            type Value = bool;

            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.gen()
            }
        }
    }
}

/// Defines deterministic property tests over [`Strategy`] inputs.
///
/// Supports the common form used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn prop_name(x in 0usize..10, (a, b) in my_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$attr:meta])*
            fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..u64::from(cfg.cases) {
                    let mut rng =
                        $crate::test_runner::TestRng::deterministic(case, stringify!($name));
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                    // The body may use `?` with `TestCaseError` like real
                    // proptest; a plain block unifies with `Ok(())`.
                    #[allow(clippy::redundant_closure_call)]
                    let outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("proptest case {case} of {} failed: {e}", stringify!($name));
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$attr:meta])*
            fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $( $(#[$attr])* fn $name( $($pat in $strat),+ ) $body )*
        }
    };
}

/// Asserts a condition inside a property (panics with the condition text).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// The common imports of a property-test module.
pub mod prelude {
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, bool)> {
        (1usize..10, prop::bool::ANY).prop_map(|(n, b)| (n * 2, b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in 0u64..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn mapped_strategies_apply(p in pair()) {
            prop_assert_eq!(p.0 % 2, 0);
            prop_assert!(p.0 >= 2 && p.0 < 20);
        }

        #[test]
        fn any_is_exercised(seed in any::<u64>(), flip in prop::bool::ANY) {
            // Determinism: regenerating from the same case index gives the
            // same value (the macro reseeds per case, so just touch both).
            let _ = (seed, flip);
        }
    }

    #[test]
    fn cases_are_deterministic_across_runs() {
        let mut a = TestRng::deterministic(3, "case");
        let mut b = TestRng::deterministic(3, "case");
        let s = 0usize..100;
        assert_eq!(
            Strategy::generate(&s, &mut a),
            Strategy::generate(&s, &mut b)
        );
    }
}
